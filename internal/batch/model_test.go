package batch

import (
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/multiexit"
	"repro/internal/tensor"
)

// testDeployed builds a small deployed LeNet-EE for model tests.
func testDeployed(t testing.TB, backend core.InferBackend) *core.Deployed {
	t.Helper()
	net := multiexit.LeNetEE(tensor.NewRNG(1))
	if err := compress.Apply(net, compress.Fig1bUniform(net)); err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDeployed(net, []float64{0.6, 0.7, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	d.DefaultBackend = backend
	return d
}

// testInput returns a deterministic valid input.
func testInput(seed uint64, n int) []float32 {
	rng := tensor.NewRNG(seed)
	in := make([]float32, n)
	for i := range in {
		in[i] = rng.Float32()
	}
	return in
}

// TestModelFloatMatchesPlan pins the serving answer to the compiled
// plan: class, confidence, and the per-exit profile must match direct
// Exec runs bit for bit, at every chunking.
func TestModelFloatMatchesPlan(t *testing.T) {
	d := testDeployed(t, core.BackendDefault)
	m, err := NewModel(d, core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend() != core.BackendPlan {
		t.Fatalf("backend = %v, want plan", m.Backend())
	}
	p, err := d.FloatPlan()
	if err != nil {
		t.Fatal(err)
	}
	ex, st := p.NewExec(), p.NewState()

	// 6 requests across a MaxBatch of 4 exercises the chunk split.
	reqs := make([]Req, 6)
	for i := range reqs {
		reqs[i] = Req{Input: testInput(uint64(i+1), m.InputLen()), Options: Options{Exit: -1}}
	}
	preds := m.InferBatch(reqs)
	for i, pred := range preds {
		if pred.Backend != "plan" {
			t.Fatalf("req %d: backend %q", i, pred.Backend)
		}
		if len(pred.ExitClasses) != m.NumExits() || len(pred.ExitConfidences) != m.NumExits() {
			t.Fatalf("req %d: exit profile lengths %d/%d, want %d",
				i, len(pred.ExitClasses), len(pred.ExitConfidences), m.NumExits())
		}
		img := tensor.FromSlice(reqs[i].Input, 3, 32, 32)
		for e := 0; e < m.NumExits(); e++ {
			ex.InferTo(st, img, e)
			if pred.ExitClasses[e] != st.Predicted() || pred.ExitConfidences[e] != st.Confidence() {
				t.Fatalf("req %d exit %d: (%d, %v) want (%d, %v)",
					i, e, pred.ExitClasses[e], pred.ExitConfidences[e], st.Predicted(), st.Confidence())
			}
		}
		last := m.NumExits() - 1
		if pred.Exit != last || pred.Class != pred.ExitClasses[last] {
			t.Fatalf("req %d: took exit %d class %d, want deepest", i, pred.Exit, pred.Class)
		}
	}
}

// TestModelExitAndThreshold covers the request options: a fixed exit
// bound and the anytime early-exit threshold.
func TestModelExitAndThreshold(t *testing.T) {
	m, err := NewModel(testDeployed(t, core.BackendDefault), core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := testInput(3, m.InputLen())

	bounded := m.Infer(Req{Input: in, Options: Options{Exit: 1}})
	if len(bounded.ExitConfidences) != 2 || bounded.Exit != 1 {
		t.Fatalf("exit bound 1: profile %d exits, took %d", len(bounded.ExitConfidences), bounded.Exit)
	}

	// A permissive threshold takes the first exit.
	eager := m.Infer(Req{Input: in, Options: Options{Exit: -1, Threshold: 1e-9}})
	if eager.Exit != 0 || eager.Class != eager.ExitClasses[0] {
		t.Fatalf("tiny threshold: took exit %d", eager.Exit)
	}
	// An unreachable threshold falls back to the bound.
	deep := m.Infer(Req{Input: in, Options: Options{Exit: -1, Threshold: 1}})
	if deep.Exit != m.NumExits()-1 && deep.Confidence < 1 {
		t.Fatalf("threshold 1: took exit %d with confidence %v", deep.Exit, deep.Confidence)
	}
}

// TestModelInt8AndLegacy checks the non-default backends answer and
// agree with their own single-image reference paths.
func TestModelInt8AndLegacy(t *testing.T) {
	// int8: the deployment's pinned-scale plan is the reference.
	d := testDeployed(t, core.BackendInt8)
	m, err := NewModel(d, core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend() != core.BackendInt8 {
		t.Fatalf("backend = %v, want int8 (deployment default)", m.Backend())
	}
	ip, err := d.Int8PlanPinned()
	if err != nil {
		t.Fatal(err)
	}
	ex, st := ip.NewExec(), ip.NewState()
	in := testInput(5, m.InputLen())
	pred := m.Infer(Req{Input: in, Options: Options{Exit: -1}})
	if pred.Backend != "int8" {
		t.Fatalf("backend label %q", pred.Backend)
	}
	ex.InferTo(st, tensor.FromSlice(in, len(in)), m.NumExits()-1)
	if pred.Class != st.Predicted() {
		t.Fatalf("int8 class %d, want %d", pred.Class, st.Predicted())
	}

	// legacy: explicit request wins over the plan default and matches
	// the layer walk (which is itself bit-identical to the plan).
	d2 := testDeployed(t, core.BackendDefault)
	lm, err := NewModel(d2, core.BackendLegacy, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Backend() != core.BackendLegacy {
		t.Fatalf("backend = %v, want legacy", lm.Backend())
	}
	lp := lm.Infer(Req{Input: in, Options: Options{Exit: -1}})
	want := d2.Net.InferTo(tensor.FromSlice(in, 3, 32, 32), lm.NumExits()-1)
	if lp.Class != want.Predicted() || lp.Confidence != want.Confidence() {
		t.Fatalf("legacy (%d, %v), want (%d, %v)", lp.Class, lp.Confidence, want.Predicted(), want.Confidence())
	}
}

// TestModelInt8Fast checks the packed-weight fast backend serves
// through the batched lane path and agrees bit-for-bit with its own
// single-image executor — batching composition must not change any
// image's answer.
func TestModelInt8Fast(t *testing.T) {
	d := testDeployed(t, core.BackendDefault)
	m, err := NewModel(d, core.BackendInt8Fast, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend() != core.BackendInt8Fast {
		t.Fatalf("backend = %v, want int8fast", m.Backend())
	}
	fp, err := d.Int8FastPlanPinned()
	if err != nil {
		t.Fatal(err)
	}
	ex, st := fp.NewExec(), fp.NewState()
	reqs := make([]Req, 6)
	for i := range reqs {
		reqs[i] = Req{Input: testInput(uint64(i), m.InputLen()), Options: Options{Exit: -1}}
	}
	preds := m.InferBatch(reqs)
	for i, pred := range preds {
		if pred.Backend != "int8fast" {
			t.Fatalf("req %d: backend label %q", i, pred.Backend)
		}
		ex.InferTo(st, tensor.FromSlice(reqs[i].Input, len(reqs[i].Input)), m.NumExits()-1)
		if pred.Class != st.Predicted() || pred.Confidence != st.Confidence() {
			t.Fatalf("req %d: batched (%d, %v), want (%d, %v)",
				i, pred.Class, pred.Confidence, st.Predicted(), st.Confidence())
		}
	}
}

// TestModelValidate is the serving-boundary bad-input table: every
// malformed request must come back as an error naming the problem,
// never reach a panic in the nn layers.
func TestModelValidate(t *testing.T) {
	m, err := NewModel(testDeployed(t, core.BackendDefault), core.BackendDefault, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := testInput(1, m.InputLen())
	nan := append([]float32(nil), good...)
	nan[7] = float32(nanBits())
	inf := append([]float32(nil), good...)
	inf[0] = float32(1e38)
	inf[0] *= 10 // overflows to +Inf at runtime

	cases := []struct {
		name string
		req  Req
		want string
	}{
		{"short input", Req{Input: good[:100]}, "want 3072"},
		{"empty input", Req{Input: nil}, "want 3072"},
		{"NaN value", Req{Input: nan, Options: Options{Exit: -1}}, "finite"},
		{"Inf value", Req{Input: inf, Options: Options{Exit: -1}}, "finite"},
		{"exit too deep", Req{Input: good, Options: Options{Exit: 3}}, "out of range"},
		{"bad threshold", Req{Input: good, Options: Options{Threshold: 1.5}}, "threshold"},
		{"NaN threshold", Req{Input: good, Options: Options{Threshold: nanBits()}}, "threshold"},
	}
	for _, tc := range cases {
		err := m.Validate(&tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := Req{Input: good, Options: Options{Exit: -1, Threshold: 0.5}}
	if err := m.Validate(&ok); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

// nanBits builds a float64 NaN without the math import dance.
func nanBits() float64 {
	z := 0.0
	return z / z
}

// TestModelRejectsNilAndUnplannable covers constructor errors.
func TestModelRejectsNilAndUnplannable(t *testing.T) {
	if _, err := NewModel(nil, core.BackendDefault, 0); err == nil {
		t.Fatal("nil deployment accepted")
	}
}

// TestModelAnswerIndependentOfBatchCompany: a request's prediction must
// not depend on which other requests shared its micro-batch.
func TestModelAnswerIndependentOfBatchCompany(t *testing.T) {
	m, err := NewModel(testDeployed(t, core.BackendDefault), core.BackendDefault, 8)
	if err != nil {
		t.Fatal(err)
	}
	target := Req{Input: testInput(9, m.InputLen()), Options: Options{Exit: -1}}
	alone := m.Infer(target)
	company := make([]Req, 5)
	company[2] = target
	for i := range company {
		if i != 2 {
			company[i] = Req{Input: testInput(uint64(40+i), m.InputLen()), Options: Options{Exit: i % m.NumExits()}}
		}
	}
	preds := m.InferBatch(company)
	got := preds[2]
	if got.Class != alone.Class || got.Confidence != alone.Confidence || got.Exit != alone.Exit {
		t.Fatalf("batched (%d, %v, exit %d) differs from solo (%d, %v, exit %d)",
			got.Class, got.Confidence, got.Exit, alone.Class, alone.Confidence, alone.Exit)
	}
	for e := range got.ExitConfidences {
		if got.ExitConfidences[e] != alone.ExitConfidences[e] {
			t.Fatalf("exit %d confidence drifted under batching", e)
		}
	}
}

// TestModelGeometry sanity-checks the shape accessors.
func TestModelGeometry(t *testing.T) {
	m, err := NewModel(testDeployed(t, core.BackendDefault), core.BackendDefault, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, h, w := m.InputShape()
	if c != 3 || h != 32 || w != 32 || m.InputLen() != 3072 {
		t.Fatalf("shape %dx%dx%d len %d", c, h, w, m.InputLen())
	}
	if m.MaxBatch() != DefaultMaxBatch {
		t.Fatalf("default max batch = %d", m.MaxBatch())
	}
	if m.NumExits() != 3 {
		t.Fatalf("exits = %d", m.NumExits())
	}
}
