package batch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Inferer executes one micro-batch of validated requests. *Model is the
// production implementation; tests substitute stubs to probe the queue's
// scheduling without paying for inference.
type Inferer interface {
	InferBatch(reqs []Req) []Prediction
}

// Config tunes a queue's micro-batching policy.
type Config struct {
	// MaxBatch is the most requests one dispatch carries (default 8).
	MaxBatch int
	// Window is how long the dispatcher holds an under-full batch open
	// waiting for company (default 2ms). Larger windows trade tail
	// latency for bigger batches; zero keeps the default, negative
	// dispatches immediately (degenerate per-request batches).
	Window time.Duration
	// QueueCap bounds the requests waiting to be dispatched (default
	// 256). At the bound Submit fails fast with ErrQueueFull — the
	// backpressure signal the HTTP layer turns into 429.
	QueueCap int
	// Metrics routes the queue's counters into a shared obs registry
	// (one instrument set per served model). Nil gets private,
	// unregistered instruments — Stats still works, nothing is exposed.
	// The queue's counters ARE these instruments: the JSON Stats view
	// and a Prometheus exposition of the same registry cannot disagree.
	Metrics *Metrics
}

// Metrics is the obs instrument set a queue updates. Counters are
// monotonic across queue generations: when the serving layer tears a
// queue down and later rebuilds one for the same model, passing the same
// Metrics continues the series instead of resetting it.
type Metrics struct {
	// Served/Rejected/Canceled/Errored/Batches mirror the Stats fields
	// of the same names.
	Served, Rejected, Canceled, Errored, Batches *obs.Counter
	// BatchSize takes one observation per non-empty dispatch. For exact
	// per-size counts (Stats.BatchSizes), build it with unit-width
	// integer buckets: obs.LinearBuckets(1, 1, MaxBatch).
	BatchSize *obs.Histogram
	// Latency takes one observation per served request
	// (admission→answer), in seconds.
	Latency *obs.Histogram
	// Depth tracks requests admitted but not yet answered.
	Depth *obs.Gauge
}

// newPrivateMetrics builds an unregistered instrument set for queues
// whose owner did not supply one.
func newPrivateMetrics(maxBatch int) *Metrics {
	return &Metrics{
		Served:    &obs.Counter{},
		Rejected:  &obs.Counter{},
		Canceled:  &obs.Counter{},
		Errored:   &obs.Counter{},
		Batches:   &obs.Counter{},
		BatchSize: obs.NewHistogram(obs.LinearBuckets(1, 1, maxBatch)),
		Latency:   obs.NewHistogram(obs.DefLatencyBuckets),
		Depth:     &obs.Gauge{},
	}
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Window == 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
}

// Queue errors.
var (
	// ErrQueueFull reports that the pending-request bound was hit; the
	// caller should shed load (HTTP 429).
	ErrQueueFull = errors.New("batch: queue is full")
	// ErrClosed reports submission to a closed queue.
	ErrClosed = errors.New("batch: queue is closed")
	// ErrInferenceFailed wraps a panic recovered during batch execution
	// — a server-side failure (HTTP 500), distinct from the transient
	// shed/shutdown conditions a client may retry.
	ErrInferenceFailed = errors.New("batch: inference failed")
	// ErrBadInput wraps every request-validation failure (wrong input
	// volume, non-finite values, exit bound out of range, bad
	// threshold) — the client-addressable taxonomy entry (HTTP 400).
	ErrBadInput = errors.New("batch: bad input")
)

// latencyRing is how many recent request latencies the percentile
// estimator keeps.
const latencyRing = 1024

// Queue accumulates inference requests into micro-batches: a dispatch
// fires as soon as MaxBatch requests are waiting, or Window after the
// first request of an under-full batch arrived. One worker goroutine
// owns dispatch order, so a queue never runs its Inferer concurrently
// with itself (concurrency across models comes from one queue per
// model). Submit is safe for any number of concurrent callers.
type Queue struct {
	inf Inferer
	cfg Config

	ch   chan *pending
	stop chan struct{}
	done chan struct{}

	stateMu sync.RWMutex
	closed  bool

	// m holds the monotonic instruments (counters, size/latency
	// histograms, depth gauge); the fields below are the queue-local
	// remainder: the latency ring for percentile estimation and the
	// depth high-water mark.
	m        *Metrics
	statMu   sync.Mutex
	started  time.Time
	lats     []time.Duration
	latNext  int
	depth    int64 // requests accepted but not yet answered
	maxDepth int64

	// Dispatch scratch, sized to MaxBatch once at construction. Only
	// the worker goroutine touches these, and noteBatch copies latsBuf
	// into the ring before the next dispatch reuses it, so per-batch
	// reslicing is safe and the dispatch path stays allocation-free.
	reqsBuf []Req
	latsBuf []time.Duration
}

// outcome travels back to the submitter.
type outcome struct {
	pred Prediction
	err  error
}

// pending is one queued request.
type pending struct {
	req      Req
	ctx      context.Context
	enqueued time.Time
	done     chan outcome // buffered(1): the worker never blocks on it
}

// NewQueue starts a queue dispatching onto inf. Close it to drain.
func NewQueue(inf Inferer, cfg Config) *Queue {
	cfg.fillDefaults()
	m := cfg.Metrics
	if m == nil {
		m = newPrivateMetrics(cfg.MaxBatch)
	}
	q := &Queue{
		inf:     inf,
		cfg:     cfg,
		m:       m,
		ch:      make(chan *pending, cfg.QueueCap),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		started: time.Now(),
		lats:    make([]time.Duration, 0, latencyRing),
		reqsBuf: make([]Req, 0, cfg.MaxBatch),
		latsBuf: make([]time.Duration, 0, cfg.MaxBatch),
	}
	go q.worker()
	return q
}

// Ticket is an accepted request waiting for its answer.
type Ticket struct {
	p *pending
}

// Enqueue admits a request without waiting for the result, so a
// multi-input HTTP request can queue all its inputs into the same
// micro-batching window before collecting. Fails fast with ErrQueueFull
// at the bound and ErrClosed after Close. ctx cancellation after
// admission makes the dispatcher skip the request.
func (q *Queue) Enqueue(ctx context.Context, r Req) (*Ticket, error) {
	p := &pending{req: r, ctx: ctx, enqueued: time.Now(), done: make(chan outcome, 1)}
	// The state read-lock pairs with Close's write-lock: once closed is
	// set no new request can enter ch, so the worker's final drain
	// observes a complete queue.
	q.stateMu.RLock()
	defer q.stateMu.RUnlock()
	if q.closed {
		return nil, ErrClosed
	}
	select {
	case q.ch <- p:
		q.noteEnqueued()
		return &Ticket{p: p}, nil
	default:
		q.noteRejected()
		return nil, ErrQueueFull
	}
}

// Wait blocks for the request's answer. It returns ctx.Err() if ctx
// ends first — the dispatcher then observes the cancellation and skips
// the request (its slot is never silently dropped: every admitted
// request is either answered or skipped-as-canceled, exactly once).
func (t *Ticket) Wait(ctx context.Context) (Prediction, error) {
	select {
	case out := <-t.p.done:
		return out.pred, out.err
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
}

// Submit is Enqueue+Wait for the single-request caller.
func (q *Queue) Submit(ctx context.Context, r Req) (Prediction, error) {
	t, err := q.Enqueue(ctx, r)
	if err != nil {
		return Prediction{}, err
	}
	return t.Wait(ctx)
}

// Close stops admissions, waits for the dispatcher to drain every
// already-admitted request (each one still gets a real answer), and
// returns when the worker has exited or ctx gave up.
func (q *Queue) Close(ctx context.Context) error {
	q.stateMu.Lock()
	already := q.closed
	q.closed = true
	q.stateMu.Unlock()
	if !already {
		close(q.stop)
	}
	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker is the dispatch loop: collect a batch, execute, repeat; on
// stop, drain whatever is left.
func (q *Queue) worker() {
	defer close(q.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*pending, 0, q.cfg.MaxBatch)
	for {
		// Block for the batch's first request.
		var first *pending
		select {
		case first = <-q.ch:
		case <-q.stop:
			q.drain(batch[:0])
			return
		}
		batch = append(batch[:0], first)

		// Gather until full, the window closes, or shutdown.
		if q.cfg.Window > 0 {
			timer.Reset(q.cfg.Window)
		gather:
			for len(batch) < q.cfg.MaxBatch {
				select {
				case p := <-q.ch:
					batch = append(batch, p)
				case <-timer.C:
					break gather
				case <-q.stop:
					break gather
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
			// Immediate mode still fills from whatever already queued.
		fill:
			for len(batch) < q.cfg.MaxBatch {
				select {
				case p := <-q.ch:
					batch = append(batch, p)
				default:
					break fill
				}
			}
		}
		q.dispatch(batch)
		select {
		case <-q.stop:
			q.drain(batch[:0])
			return
		default:
		}
	}
}

// drain answers every request still queued at shutdown, in arrival
// order, in micro-batches.
//
//ehlint:hotpath
func (q *Queue) drain(batch []*pending) {
	for {
		select {
		case p := <-q.ch:
			batch = append(batch, p)
			if len(batch) == q.cfg.MaxBatch {
				q.dispatch(batch)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				q.dispatch(batch)
			}
			return
		}
	}
}

// dispatch executes one gathered batch: canceled requests are skipped
// (their submitters already returned), live ones run through the
// Inferer and receive their prediction.
//
//ehlint:hotpath
func (q *Queue) dispatch(batch []*pending) {
	live := batch[:0]
	var ncanceled int64
	for _, p := range batch {
		if p.ctx != nil && p.ctx.Err() != nil {
			p.done <- outcome{err: p.ctx.Err()}
			ncanceled++
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		q.noteBatch(0, ncanceled, nil)
		return
	}
	reqs := q.reqsBuf[:0]
	for _, p := range live {
		reqs = append(reqs, p.req)
	}
	preds, err := q.runBatch(reqs)
	if err != nil {
		// Execution panicked: fail this batch's requests, keep the
		// worker (and the daemon) alive for the next one.
		for _, p := range live {
			p.done <- outcome{err: err}
		}
		q.noteFailed(len(live), ncanceled)
		return
	}
	now := time.Now()
	lats := q.latsBuf[:0]
	for i, p := range live {
		p.done <- outcome{pred: preds[i]}
		lats = append(lats, now.Sub(p.enqueued))
	}
	q.noteBatch(len(live), ncanceled, lats)
}

// runBatch executes one batch on the Inferer, converting a panic into
// an error. The worker goroutine is the one place inference runs — an
// HTTP handler's recover guard cannot reach it — so this recover is
// what keeps a poisoned request from taking the whole daemon down.
func (q *Queue) runBatch(reqs []Req) (preds []Prediction, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			preds, err = nil, fmt.Errorf("%w: panic: %v", ErrInferenceFailed, rec)
		}
	}()
	return q.inf.InferBatch(reqs), nil
}

// Stats is a queue's observability snapshot (GET /v1/stats).
type Stats struct {
	// QueueDepth is the number of requests admitted but not yet
	// answered (including any batch currently executing).
	QueueDepth int `json:"queueDepth"`
	// MaxDepth is the high-water mark of QueueDepth.
	MaxDepth int `json:"maxDepth"`
	// Served counts answered requests; Rejected counts ErrQueueFull
	// refusals; Canceled counts requests whose context ended before
	// dispatch; Errored counts requests whose execution failed
	// (recovered panic) — they are not part of Served.
	Served   int64 `json:"served"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	Errored  int64 `json:"errored,omitempty"`
	// Batches counts dispatches; BatchSizes[i] counts dispatches that
	// carried i+1 requests — the micro-batching histogram.
	Batches    int64   `json:"batches"`
	BatchSizes []int64 `json:"batchSizes"`
	// MeanBatch is Served/Batches.
	MeanBatch float64 `json:"meanBatch"`
	// LatencyMS are percentiles over the most recent request latencies
	// (admission to answer), in milliseconds.
	LatencyMS LatencyStats `json:"latencyMs"`
	// ThroughputPerSec is Served divided by the queue's uptime.
	ThroughputPerSec float64 `json:"throughputPerSec"`
}

// LatencyStats are latency percentiles in milliseconds.
type LatencyStats struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Stats snapshots the queue's counters — a JSON-shaped view over the
// same obs instruments a /metrics exposition reads, so the two views
// agree by construction.
func (q *Queue) Stats() Stats {
	q.statMu.Lock()
	defer q.statMu.Unlock()
	served, batches := q.m.Served.Value(), q.m.Batches.Value()
	bc := q.m.BatchSize.BucketCounts()
	sizes := make([]int64, len(bc)-1) // drop the +Inf overflow bucket
	for i := range sizes {
		sizes[i] = int64(bc[i])
	}
	st := Stats{
		QueueDepth: int(q.depth),
		MaxDepth:   int(q.maxDepth),
		Served:     served,
		Rejected:   q.m.Rejected.Value(),
		Canceled:   q.m.Canceled.Value(),
		Errored:    q.m.Errored.Value(),
		Batches:    batches,
		BatchSizes: sizes,
	}
	if batches > 0 {
		st.MeanBatch = float64(served) / float64(batches)
	}
	if up := time.Since(q.started).Seconds(); up > 0 {
		st.ThroughputPerSec = float64(served) / up
	}
	if len(q.lats) > 0 {
		s := append([]time.Duration(nil), q.lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(s)-1))
			return float64(s[i]) / float64(time.Millisecond)
		}
		st.LatencyMS = LatencyStats{P50: pct(0.50), P90: pct(0.90), P99: pct(0.99)}
	}
	return st
}

func (q *Queue) noteEnqueued() {
	q.statMu.Lock()
	q.depth++
	if q.depth > q.maxDepth {
		q.maxDepth = q.depth
	}
	q.m.Depth.Set(float64(q.depth))
	q.statMu.Unlock()
}

func (q *Queue) noteRejected() {
	q.m.Rejected.Inc()
}

// noteFailed retires a batch whose execution errored: the requests
// leave the depth accounting but are counted as errored, not served.
func (q *Queue) noteFailed(size int, ncanceled int64) {
	q.statMu.Lock()
	q.depth -= int64(size) + ncanceled
	q.m.Depth.Set(float64(q.depth))
	q.statMu.Unlock()
	q.m.Canceled.Add(ncanceled)
	q.m.Errored.Add(int64(size))
}

func (q *Queue) noteBatch(size int, ncanceled int64, lats []time.Duration) {
	q.statMu.Lock()
	q.depth -= int64(size) + ncanceled
	q.m.Depth.Set(float64(q.depth))
	for _, l := range lats {
		if len(q.lats) < latencyRing {
			q.lats = append(q.lats, l)
		} else {
			q.lats[q.latNext] = l
			q.latNext = (q.latNext + 1) % latencyRing
		}
	}
	q.statMu.Unlock()
	q.m.Canceled.Add(ncanceled)
	if size == 0 {
		return
	}
	q.m.Batches.Inc()
	q.m.Served.Add(int64(size))
	q.m.BatchSize.Observe(float64(size))
	for _, l := range lats {
		q.m.Latency.Observe(l.Seconds())
	}
}
