// Package batch is the online-inference execution layer behind the
// ehserved /v1/infer endpoint and the public Session.Infer API: it wraps
// a deployed model in a validated, backend-resolved executor (Model) and
// schedules concurrent requests onto it through a micro-batching queue
// (Queue) with bounded backpressure.
//
// The split mirrors the rest of the system: Model is pure execution —
// deterministic, synchronous, one micro-batch at a time — while Queue
// owns the concurrency policy (latency window, batch bound, overflow,
// drain). The serving layer composes one Queue per uploaded artifact or
// registered deployment.
package batch

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// Options tune one inference request beyond its input.
type Options struct {
	// Exit bounds how deep the trunk runs: the prediction is taken at
	// this exit unless Threshold stops earlier. Negative (the default)
	// means the deepest exit.
	Exit int
	// Threshold, when > 0, enables anytime early exit: the prediction is
	// taken at the first exit whose normalized-entropy confidence
	// reaches it (falling back to the Exit bound when none does). The
	// trunk still runs to the Exit bound — on a batched server the
	// schedule is per micro-batch, not per image — so the threshold
	// selects which computed exit answers, exactly like the paper's
	// incremental-inference confidence test.
	Threshold float64
}

// Req is one validated inference request: a CHW image flattened to the
// model's input volume, plus options.
type Req struct {
	Input []float32
	Options
}

// Prediction is the answer to one request.
type Prediction struct {
	// Class is the predicted class at the exit taken.
	Class int `json:"class"`
	// Exit is the exit the prediction was taken at.
	Exit int `json:"exit"`
	// Confidence is the normalized-entropy confidence at that exit.
	Confidence float64 `json:"confidence"`
	// ExitClasses/ExitConfidences hold every computed exit's argmax and
	// confidence, in exit order up to the request's Exit bound — the
	// anytime-inference profile of the input.
	ExitClasses     []int     `json:"exitClasses"`
	ExitConfidences []float64 `json:"exitConfidences"`
	// Backend names the inference backend that produced the answer.
	Backend string `json:"backend"`
}

// Model is a deployed network bound to a serving backend: a compiled
// batched plan (float32 by default, or the packed-weight int8-fast
// pipeline), per-image executors for the bit-exact int8 reference, or
// the legacy layer walk for architectures the plan compiler rejects. All
// methods are safe for concurrent use; execution state is pooled (plan
// backends) or serialized (the layer walk mutates network internals).
type Model struct {
	d        *core.Deployed
	backend  core.InferBackend
	geom     plan.Geometry
	maxBatch int

	bplan *plan.Plan // batched backends: float32 or int8-fast (nil on bit-exact int8 and legacy)
	iplan *plan.Plan // bit-exact int8 backend

	execs sync.Pool  // *batchLane (batched plans) or *int8Lane (bit-exact int8)
	mu    sync.Mutex // serializes legacy layer-walk execution

	// legacyScratch is the layer walk's softmax scratch; the walk is
	// already serialized on mu, so one buffer suffices. The plan
	// backends keep scratch on their pooled lanes instead — Model
	// methods are concurrency-safe, so per-call state must live on
	// per-call pooled contexts, never on the Model.
	legacyScratch []float32
}

// batchLane is one pooled float32 execution context: the batched
// executor plus per-image-slot softmax scratch (per slot because the
// executor's bands may visit exits for different slots concurrently).
type batchLane struct {
	be      *plan.BatchExec
	scratch [][]float32
}

// int8Lane is one pooled int8 execution context.
type int8Lane struct {
	ex      *plan.Exec
	st      *plan.State
	scratch []float32
}

// DefaultMaxBatch is the micro-batch bound models are built with when
// the caller does not choose one.
const DefaultMaxBatch = 8

// NewModel binds a deployment to a serving backend. backend resolution
// follows the runtime's precedence: an explicit choice wins, otherwise
// the deployment's own DefaultBackend, otherwise the compiled plan.
// Architectures the plan compiler cannot size (no leading conv with
// nominal dims) are rejected — the serving boundary must know the input
// shape to validate requests before the nn layer walk can panic.
func NewModel(d *core.Deployed, backend core.InferBackend, maxBatch int) (*Model, error) {
	if d == nil {
		return nil, fmt.Errorf("batch: nil deployment")
	}
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	if backend == core.BackendDefault {
		backend = d.DefaultBackend
	}
	backend = backend.Resolve()

	geom, err := plan.InferGeometry(d.Net)
	if err != nil {
		return nil, fmt.Errorf("batch: cannot serve this architecture: %w", err)
	}
	m := &Model{d: d, backend: backend, geom: geom, maxBatch: maxBatch}
	switch backend {
	case core.BackendInt8:
		m.iplan, err = d.Int8PlanPinned()
		if err != nil {
			return nil, fmt.Errorf("batch: int8 lowering failed: %w", err)
		}
	case core.BackendInt8Fast:
		// The packed-weight integer pipeline batches like float32: its
		// plan runs through the lane-banded BatchExec below.
		m.bplan, err = d.Int8FastPlanPinned()
		if err != nil {
			return nil, fmt.Errorf("batch: int8-fast lowering failed: %w", err)
		}
	case core.BackendLegacy:
		// Explicit layer-walk request: don't compile (and cache) a float
		// plan that would never run.
		m.legacyScratch = make([]float32, d.Net.Classes)
	default:
		// BackendPlan serves from the compiled float plan when it
		// compiles; otherwise the layer walk keeps unsupported-but-valid
		// architectures servable.
		if m.bplan, err = d.FloatPlan(); err != nil {
			m.bplan = nil
			m.backend = core.BackendLegacy
			m.legacyScratch = make([]float32, d.Net.Classes)
		}
	}
	return m, nil
}

// Deployed returns the model's deployment.
func (m *Model) Deployed() *core.Deployed { return m.d }

// Backend returns the resolved serving backend.
func (m *Model) Backend() core.InferBackend { return m.backend }

// NumExits returns the number of exits the model serves.
func (m *Model) NumExits() int { return m.d.Net.NumExits() }

// MaxBatch returns the largest micro-batch InferBatch dispatches at
// once; longer request slices are chunked.
func (m *Model) MaxBatch() int { return m.maxBatch }

// InputShape returns the expected input geometry (channels, height,
// width).
func (m *Model) InputShape() (c, h, w int) { return m.geom.C, m.geom.H, m.geom.W }

// InputLen returns the expected flattened input length.
func (m *Model) InputLen() int { return m.geom.Vol() }

// Validate checks one request at the serving boundary, returning a
// client-addressable error wrapping ErrBadInput: wrong input volume,
// non-finite values, an exit bound out of range, or a threshold outside
// [0, 1]. Anything that passes cannot panic the execution layers.
func (m *Model) Validate(r *Req) error {
	if want := m.geom.Vol(); len(r.Input) != want {
		return fmt.Errorf("%w: input has %d values, want %d (%d×%d×%d CHW)",
			ErrBadInput, len(r.Input), want, m.geom.C, m.geom.H, m.geom.W)
	}
	for i, v := range r.Input {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%w: input[%d] is %v; values must be finite", ErrBadInput, i, v)
		}
	}
	if r.Exit >= m.NumExits() {
		return fmt.Errorf("%w: exit %d out of range: model has %d exits", ErrBadInput, r.Exit, m.NumExits())
	}
	if !(r.Threshold >= 0 && r.Threshold <= 1) { // rejects NaN too
		return fmt.Errorf("%w: threshold %v outside [0, 1]", ErrBadInput, r.Threshold)
	}
	return nil
}

// InferBatch answers a slice of already-validated requests, chunking it
// into micro-batches of at most MaxBatch. Every image's per-exit logits
// are bit-identical to a single-image run on the same backend, so the
// answer to a request does not depend on what it was batched with.
func (m *Model) InferBatch(reqs []Req) []Prediction {
	preds := make([]Prediction, len(reqs))
	for lo := 0; lo < len(reqs); lo += m.maxBatch {
		hi := min(lo+m.maxBatch, len(reqs))
		m.inferChunk(reqs[lo:hi], preds[lo:hi])
	}
	return preds
}

// Infer answers one request.
func (m *Model) Infer(r Req) Prediction {
	return m.InferBatch([]Req{r})[0]
}

// inferChunk answers one micro-batch (len <= maxBatch).
func (m *Model) inferChunk(reqs []Req, preds []Prediction) {
	last := m.NumExits() - 1
	maxExit := 0
	for i := range reqs {
		if reqs[i].Exit < 0 {
			reqs[i].Exit = last
		}
		if reqs[i].Exit > maxExit {
			maxExit = reqs[i].Exit
		}
		preds[i] = Prediction{
			Backend:         m.backend.String(),
			ExitClasses:     make([]int, 0, reqs[i].Exit+1),
			ExitConfidences: make([]float64, 0, reqs[i].Exit+1),
		}
	}
	switch {
	case m.bplan != nil:
		m.inferBatched(reqs, preds, maxExit)
	case m.iplan != nil:
		m.inferInt8(reqs, preds)
	default:
		m.inferLegacy(reqs, preds)
	}
	for i := range preds {
		p := &preds[i]
		// Exit taken: the first exit whose confidence clears the
		// request's threshold, else the request's exit bound.
		take := len(p.ExitConfidences) - 1
		if th := reqs[i].Threshold; th > 0 {
			for e, c := range p.ExitConfidences {
				if c >= th {
					take = e
					break
				}
			}
		}
		p.Exit = take
		p.Class = p.ExitClasses[take]
		p.Confidence = p.ExitConfidences[take]
	}
}

// record appends exit e's verdict to p, computing confidence in the
// caller-owned scratch.
func record(p *Prediction, scratch, logits []float32) {
	p.ExitClasses = append(p.ExitClasses, plan.Argmax(logits))
	p.ExitConfidences = append(p.ExitConfidences, plan.LogitsConfidence(logits, scratch))
}

// inferBatched runs the chunk through a pooled batched executor
// (float32 or int8-fast plan), scanning every exit up to the chunk
// bound in one pass.
func (m *Model) inferBatched(reqs []Req, preds []Prediction, maxExit int) {
	var ln *batchLane
	if v := m.execs.Get(); v != nil {
		ln = v.(*batchLane)
	} else {
		be, err := m.bplan.NewBatchExec(m.maxBatch)
		if err != nil {
			// Unreachable: bplan is batchable by construction.
			panic(err)
		}
		ln = &batchLane{be: be, scratch: make([][]float32, m.maxBatch)}
		for i := range ln.scratch {
			ln.scratch[i] = make([]float32, m.d.Net.Classes)
		}
	}
	defer m.execs.Put(ln)
	inputs := make([][]float32, len(reqs))
	for i := range reqs {
		inputs[i] = reqs[i].Input
	}
	ln.be.ScanExits(inputs, maxExit, func(e, i int, logits []float32) {
		if e <= reqs[i].Exit {
			record(&preds[i], ln.scratch[i], logits)
		}
	})
}

// inferInt8 runs the chunk image by image on pooled int8 executors (the
// bit-exact integer reference is not batched; see BatchExec).
func (m *Model) inferInt8(reqs []Req, preds []Prediction) {
	var ln *int8Lane
	if v := m.execs.Get(); v != nil {
		ln = v.(*int8Lane)
	} else {
		ln = &int8Lane{
			ex:      m.iplan.NewExec(),
			st:      m.iplan.NewState(),
			scratch: make([]float32, m.d.Net.Classes),
		}
	}
	defer m.execs.Put(ln)
	for i := range reqs {
		img := tensor.FromSlice(reqs[i].Input, len(reqs[i].Input))
		ln.ex.InferTo(ln.st, img, 0)
		record(&preds[i], ln.scratch, ln.st.Logits())
		for e := 1; e <= reqs[i].Exit; e++ {
			ln.ex.Resume(ln.st, e)
			record(&preds[i], ln.scratch, ln.st.Logits())
		}
	}
}

// inferLegacy walks the layers directly. The walk caches forward state
// on the layers themselves, so it is serialized on the model lock
// (which also guards legacyScratch).
func (m *Model) inferLegacy(reqs []Req, preds []Prediction) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range reqs {
		img := tensor.FromSlice(reqs[i].Input, m.geom.C, m.geom.H, m.geom.W)
		st := m.d.Net.InferTo(img, 0)
		record(&preds[i], m.legacyScratch, st.Logits.Data)
		for e := 1; e <= reqs[i].Exit; e++ {
			st = m.d.Net.Resume(st, e)
			record(&preds[i], m.legacyScratch, st.Logits.Data)
		}
	}
}
