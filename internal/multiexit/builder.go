package multiexit

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Builder constructs custom multi-exit architectures without hand-wiring
// segments and branches. Trunk layers accumulate into the current
// segment; each Exit call closes the segment and attaches a classifier
// branch at that point. Spatial dimensions are tracked so Conv2D nominal
// sizes (for FLOPs accounting) and Dense input sizes are derived
// automatically.
//
//	b := multiexit.NewBuilder(3, 32, 32, 10)
//	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
//	b.Exit("e1", 32)                    // early exit with a 32-wide head
//	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
//	b.Exit("e2", 0)                     // 0 = direct linear head
//	net, err := b.Build()
type Builder struct {
	classes int
	// current spatial state of the trunk.
	c, h, w int

	segments []*nn.Sequential
	branches []*nn.Sequential
	current  *nn.Sequential
	err      error
}

// NewBuilder starts a builder for inC×inH×inW inputs and the given class
// count.
func NewBuilder(inC, inH, inW, classes int) *Builder {
	b := &Builder{classes: classes, c: inC, h: inH, w: inW}
	b.current = nn.NewSequential(fmt.Sprintf("seg%d", 0))
	if inC <= 0 || inH <= 0 || inW <= 0 {
		b.err = fmt.Errorf("multiexit: invalid input dims %d×%d×%d", inC, inH, inW)
	}
	if classes < 2 {
		b.err = fmt.Errorf("multiexit: need ≥2 classes, got %d", classes)
	}
	return b
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// Conv appends a square convolution to the trunk.
func (b *Builder) Conv(name string, outC, kernel, stride, pad int) *Builder {
	if b.err != nil {
		return b
	}
	l := nn.NewConv2D(name, b.c, outC, kernel, kernel, stride, pad)
	l.NomH, l.NomW = b.h, b.w
	g := l.Geom(b.h, b.w)
	if err := g.Validate(); err != nil {
		return b.fail(fmt.Errorf("multiexit: conv %q: %w", name, err))
	}
	b.current.Add(l)
	b.c, b.h, b.w = outC, g.OutH(), g.OutW()
	return b
}

// ReLU appends an activation to the trunk.
func (b *Builder) ReLU() *Builder {
	if b.err != nil {
		return b
	}
	b.current.Add(nn.NewReLU(fmt.Sprintf("relu@%d", len(b.current.Layers))))
	return b
}

// MaxPool appends a square max-pool to the trunk.
func (b *Builder) MaxPool(kernel, stride int) *Builder {
	if b.err != nil {
		return b
	}
	l := nn.NewMaxPool2D(fmt.Sprintf("pool@%d", len(b.current.Layers)), kernel, stride)
	oh, ow := l.OutDims(b.h, b.w)
	if oh <= 0 || ow <= 0 {
		return b.fail(fmt.Errorf("multiexit: pool yields empty output at %dx%d", b.h, b.w))
	}
	b.current.Add(l)
	b.h, b.w = oh, ow
	return b
}

// Exit closes the current trunk segment and attaches a classifier branch
// reading the segment output: flatten → [hidden → ReLU →] classes.
// hidden 0 attaches a direct linear head.
func (b *Builder) Exit(name string, hidden int) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.current.Layers) == 0 {
		return b.fail(fmt.Errorf("multiexit: exit %q follows an empty trunk segment", name))
	}
	in := b.c * b.h * b.w
	branch := nn.NewSequential("branch-" + name)
	branch.Add(nn.NewFlatten(name + ".flatten"))
	if hidden > 0 {
		branch.Add(nn.NewDense(name+".fc1", in, hidden))
		branch.Add(nn.NewReLU(name + ".relu"))
		head := nn.NewDense(name+".fc2", hidden, b.classes)
		head.Final = true
		branch.Add(head)
	} else {
		head := nn.NewDense(name+".fc", in, b.classes)
		head.Final = true
		branch.Add(head)
	}
	b.segments = append(b.segments, b.current)
	b.branches = append(b.branches, branch)
	b.current = nn.NewSequential(fmt.Sprintf("seg%d", len(b.segments)))
	return b
}

// ExitConv closes the segment with a conv-then-classify branch (like
// LeNet-EE's ConvB1/ConvB2 branches): conv(outC, 3×3, pad 1) → ReLU →
// optional 2×2 pool → flatten → head.
func (b *Builder) ExitConv(name string, convC, hidden int, pool bool) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.current.Layers) == 0 {
		return b.fail(fmt.Errorf("multiexit: exit %q follows an empty trunk segment", name))
	}
	branch := nn.NewSequential("branch-" + name)
	conv := nn.NewConv2D(name+".conv", b.c, convC, 3, 3, 1, 1)
	conv.NomH, conv.NomW = b.h, b.w
	branch.Add(conv, nn.NewReLU(name+".crelu"))
	h, w := b.h, b.w
	if pool {
		branch.Add(nn.NewMaxPool2D(name+".pool", 2, 2))
		h, w = h/2, w/2
		if h == 0 || w == 0 {
			return b.fail(fmt.Errorf("multiexit: exit %q pool yields empty output", name))
		}
	}
	branch.Add(nn.NewFlatten(name + ".flatten"))
	in := convC * h * w
	if hidden > 0 {
		branch.Add(nn.NewDense(name+".fc1", in, hidden))
		branch.Add(nn.NewReLU(name + ".relu"))
		head := nn.NewDense(name+".fc2", hidden, b.classes)
		head.Final = true
		branch.Add(head)
	} else {
		head := nn.NewDense(name+".fc", in, b.classes)
		head.Final = true
		branch.Add(head)
	}
	b.segments = append(b.segments, b.current)
	b.branches = append(b.branches, branch)
	b.current = nn.NewSequential(fmt.Sprintf("seg%d", len(b.segments)))
	return b
}

// Build finalizes the network (optionally He-initializing with rng) and
// validates it. The trailing trunk layers since the last Exit are
// discarded with an error, so every architecture ends at an exit.
func (b *Builder) Build(rng *tensor.RNG) (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.segments) == 0 {
		return nil, fmt.Errorf("multiexit: no exits defined")
	}
	if len(b.current.Layers) != 0 {
		return nil, fmt.Errorf("multiexit: %d trunk layers after the final exit — end the network with Exit",
			len(b.current.Layers))
	}
	net := &Network{Segments: b.segments, Branches: b.branches, Classes: b.classes}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if rng != nil {
		for _, s := range net.Segments {
			nn.InitHe(s, rng)
		}
		for _, br := range net.Branches {
			nn.InitHe(br, rng)
		}
	}
	return net, nil
}
