package multiexit

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestLeNetEEMatchesPaperFLOPs(t *testing.T) {
	net := LeNetEE(nil)
	wantExits := []int64{PaperExit1FLOPs, PaperExit2FLOPs, PaperExit3FLOPs}
	for i, want := range wantExits {
		got := net.ExitFLOPs(i)
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.02 {
			t.Errorf("exit %d FLOPs = %d, paper %d (%.2f%% off, tolerance 2%%)",
				i+1, got, want, 100*rel)
		}
	}
}

func TestLeNetEEMatchesPaperWeightSize(t *testing.T) {
	net := LeNetEE(nil)
	got := net.WeightBytes()
	rel := math.Abs(float64(got-PaperWeightBytes)) / float64(PaperWeightBytes)
	if rel > 0.02 {
		t.Errorf("weights = %d B, paper %d B (%.2f%% off)", got, PaperWeightBytes, 100*rel)
	}
}

func TestLeNetEELayerOrder(t *testing.T) {
	net := LeNetEE(nil)
	layers := net.CompressibleLayers()
	if len(layers) != len(LeNetEELayerNames) {
		t.Fatalf("%d compressible layers, want %d", len(layers), len(LeNetEELayerNames))
	}
	for i, l := range layers {
		if l.Name() != LeNetEELayerNames[i] {
			t.Fatalf("layer %d = %q, want %q (Fig. 4 order)", i, l.Name(), LeNetEELayerNames[i])
		}
	}
}

func TestValidate(t *testing.T) {
	net := LeNetEE(nil)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Network{Segments: net.Segments, Branches: net.Branches[:2], Classes: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched branches accepted")
	}
}

func TestForwardAllShapes(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(1))
	x := tensor.New(2, 3, 32, 32)
	tensor.FillUniform(x, tensor.NewRNG(2), 0, 1)
	logits := net.ForwardAll(x, false)
	if len(logits) != 3 {
		t.Fatalf("%d exits", len(logits))
	}
	for i, l := range logits {
		if l.Dim(0) != 2 || l.Dim(1) != 10 {
			t.Fatalf("exit %d logits shape %v", i, l.Shape())
		}
	}
}

func TestInferToMatchesForwardAll(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(3))
	rng := tensor.NewRNG(4)
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, rng, 0, 1)

	batch := img.Clone().Reshape(1, 3, 32, 32)
	all := net.ForwardAll(batch, false)
	for exit := 0; exit < 3; exit++ {
		st := net.InferTo(img, exit)
		if st.Logits.L2Distance(all[exit]) > 1e-4 {
			t.Fatalf("InferTo(exit=%d) diverges from ForwardAll", exit)
		}
	}
}

func TestResumeMatchesDirectInference(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(5))
	rng := tensor.NewRNG(6)
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, rng, 0, 1)

	direct := net.InferTo(img, 2)
	st := net.InferTo(img, 0)
	st = net.Resume(st, 1)
	st = net.Resume(st, 2)
	if st.Logits.L2Distance(direct.Logits) > 1e-4 {
		t.Fatal("incremental resume must reproduce direct inference exactly")
	}
	if st.Exit != 2 {
		t.Fatalf("resumed exit = %d", st.Exit)
	}
}

func TestResumeSkippingAnExit(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(7))
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(8), 0, 1)
	direct := net.InferTo(img, 2)
	st := net.InferTo(img, 0)
	st = net.Resume(st, 2) // skip exit 1
	if st.Logits.L2Distance(direct.Logits) > 1e-4 {
		t.Fatal("resume skipping an exit must still match direct inference")
	}
}

func TestResumeBackwardPanics(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(9))
	img := tensor.New(3, 32, 32)
	st := net.InferTo(img, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic resuming to a shallower exit")
		}
	}()
	net.Resume(st, 1)
}

func TestConfidenceInUnitRange(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(10))
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(11), 0, 1)
	st := net.InferTo(img, 0)
	c := st.Confidence()
	if c < 0 || c > 1 {
		t.Fatalf("confidence %v outside [0,1]", c)
	}
}

func TestMarginalFLOPsDecomposition(t *testing.T) {
	net := LeNetEE(nil)
	// Direct cost to exit2 must equal exit0 cost + marginal(0→2) minus
	// the branch-0 head (which the direct path never runs). Verify the
	// additive identity on trunk segments instead: marginal(0,2) +
	// segments0 == trunk segments 0..2 + branch2.
	m02 := net.MarginalFLOPs(0, 2)
	direct := net.ExitFLOPs(2)
	// Trunk segment 0 cost within exit-2's path: direct − marginal.
	seg0InPath := direct - m02
	if seg0InPath <= 0 {
		t.Fatalf("segment-0 share = %d, must be positive", seg0InPath)
	}
	if m02 >= direct {
		t.Fatal("marginal cost must be below direct cost")
	}
}

func TestExitFLOPsMonotoneInDepth(t *testing.T) {
	net := LeNetEE(nil)
	if !(net.ExitFLOPs(0) < net.ExitFLOPs(1) && net.ExitFLOPs(1) < net.ExitFLOPs(2)) {
		t.Fatal("exit FLOPs must increase with depth")
	}
}

func TestModelFLOPsCountsEachLayerOnce(t *testing.T) {
	net := LeNetEE(nil)
	model := net.ModelFLOPs()
	sumExits := net.ExitFLOPs(0) + net.ExitFLOPs(1) + net.ExitFLOPs(2)
	if model >= sumExits {
		t.Fatalf("ModelFLOPs %d should be below the sum of exit paths %d (shared trunk)", model, sumExits)
	}
	if model <= net.ExitFLOPs(2) {
		t.Fatalf("ModelFLOPs %d should exceed the deepest path %d (branches add)", model, net.ExitFLOPs(2))
	}
}

func TestSegmentOfLayer(t *testing.T) {
	net := LeNetEE(nil)
	if seg, isBranch := net.SegmentOfLayer("Conv2"); seg != 1 || isBranch {
		t.Fatalf("Conv2 located at (%d, %v)", seg, isBranch)
	}
	if seg, isBranch := net.SegmentOfLayer("FC-B21"); seg != 1 || !isBranch {
		t.Fatalf("FC-B21 located at (%d, %v)", seg, isBranch)
	}
	if seg, _ := net.SegmentOfLayer("nope"); seg != -1 {
		t.Fatal("unknown layer should return -1")
	}
}

func TestEarliestExitUsing(t *testing.T) {
	net := LeNetEE(nil)
	cases := map[string]int{
		"Conv1":  0, // feeds every exit
		"ConvB1": 0,
		"Conv2":  1,
		"FC-B21": 1,
		"Conv4":  2,
		"FC-B32": 2,
	}
	for name, want := range cases {
		if got := net.EarliestExitUsing(name); got != want {
			t.Errorf("EarliestExitUsing(%s) = %d, want %d", name, got, want)
		}
	}
}
