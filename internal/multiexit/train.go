package multiexit

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TrainConfig controls joint multi-exit training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// ExitWeights scales each exit's loss; nil means equal weights. The
	// paper trains all exits jointly so shallow exits stay accurate.
	ExitWeights []float64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// Seed for shuffling.
	Seed uint64
}

func (c *TrainConfig) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
}

// Train jointly optimizes all exits with softmax cross-entropy: the total
// loss is Σ_i w_i · CE(exit_i), back-propagated through shared trunk
// segments in one pass. Returns the final-epoch mean training loss.
func Train(net *Network, train *dataset.Set, cfg TrainConfig) (float64, error) {
	cfg.fillDefaults()
	if err := net.Validate(); err != nil {
		return 0, err
	}
	if train.Len() == 0 {
		return 0, fmt.Errorf("multiexit: empty training set")
	}
	m := net.NumExits()
	weights := cfg.ExitWeights
	if weights == nil {
		weights = make([]float64, m)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != m {
		return 0, fmt.Errorf("multiexit: %d exit weights for %d exits", len(weights), m)
	}

	params := net.Params()
	opt := nn.NewSGD(params, cfg.LR, cfg.Momentum, 1e-4)
	rng := tensor.NewRNG(cfg.Seed + 0x7ea1)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		train.Shuffle(rng)
		var epochLoss float64
		batches := 0
		for at := 0; at < train.Len(); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > train.Len() {
				end = train.Len()
			}
			x, labels := train.Batch(at, end)
			opt.ZeroGrad()
			logits := net.ForwardAll(x, true)
			grads := make([]*tensor.Tensor, m)
			var loss float64
			for i := 0; i < m; i++ {
				li, gi := nn.CrossEntropyLoss(logits[i], labels)
				loss += weights[i] * li
				gi.ScaleInPlace(float32(weights[i]))
				grads[i] = gi
			}
			net.BackwardAll(grads)
			nn.ClipGradNorm(params, 5)
			opt.Step()
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Log != nil {
			accs := EvalExits(net, train.Subset(500))
			fmt.Fprintf(cfg.Log, "epoch %d: loss=%.4f train-acc=%v\n", epoch+1, lastLoss, fmtAccs(accs))
		}
	}
	return lastLoss, nil
}

func fmtAccs(accs []float64) string {
	s := "["
	for i, a := range accs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", a)
	}
	return s + "]"
}

// EvalExits returns the accuracy of every exit on the set.
func EvalExits(net *Network, set *dataset.Set) []float64 {
	m := net.NumExits()
	correct := make([]int, m)
	if set.Len() == 0 {
		return make([]float64, m)
	}
	const batch = 64
	for at := 0; at < set.Len(); at += batch {
		end := at + batch
		if end > set.Len() {
			end = set.Len()
		}
		x, labels := set.Batch(at, end)
		logits := net.ForwardAll(x, false)
		for i := 0; i < m; i++ {
			n, c := logits[i].Dim(0), logits[i].Dim(1)
			for s := 0; s < n; s++ {
				row := logits[i].Data[s*c : (s+1)*c]
				best := 0
				for j, v := range row {
					if v > row[best] {
						best = j
					}
				}
				if best == labels[s] {
					correct[i]++
				}
			}
		}
	}
	accs := make([]float64, m)
	for i := range accs {
		accs[i] = float64(correct[i]) / float64(set.Len())
	}
	return accs
}
