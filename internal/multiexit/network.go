// Package multiexit implements the paper's multi-exit neural network: a
// convolutional trunk with early-exit classifier branches attached along
// the data path (Fig. 1c). It provides whole-network and per-exit
// inference, the suspended/incremental inference the intermittent runtime
// needs (run to exit i, later resume to exit i+1 without recomputing the
// trunk), per-exit FLOPs and weight-size accounting, joint multi-exit
// training, and entropy-based confidence measurement.
package multiexit

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Network is a trunk of m segments with one classifier branch per segment.
// Exit i consumes trunk segments 0..i followed by branch i; the last
// branch is the network's final classifier.
type Network struct {
	// Segments[i] transforms t_{i-1} (or the input image for i=0) into
	// the trunk activation t_i.
	Segments []*nn.Sequential
	// Branches[i] maps t_i to class logits for exit i.
	Branches []*nn.Sequential
	// Classes is the number of output classes.
	Classes int
}

// NumExits returns the number of exits (== number of segments).
func (n *Network) NumExits() int { return len(n.Segments) }

// Validate checks structural invariants.
func (n *Network) Validate() error {
	if len(n.Segments) == 0 {
		return fmt.Errorf("multiexit: network has no segments")
	}
	if len(n.Segments) != len(n.Branches) {
		return fmt.Errorf("multiexit: %d segments but %d branches", len(n.Segments), len(n.Branches))
	}
	if n.Classes <= 1 {
		return fmt.Errorf("multiexit: need at least 2 classes, got %d", n.Classes)
	}
	return nil
}

// Params returns all trainable parameters.
func (n *Network) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range n.Segments {
		ps = append(ps, s.Params()...)
	}
	for _, b := range n.Branches {
		ps = append(ps, b.Params()...)
	}
	return ps
}

// ForwardAll runs the whole network, returning the logits of every exit.
// When train is true each layer caches state for BackwardAll.
func (n *Network) ForwardAll(x *tensor.Tensor, train bool) []*tensor.Tensor {
	logits := make([]*tensor.Tensor, n.NumExits())
	t := x
	for i, seg := range n.Segments {
		t = seg.Forward(t, train)
		logits[i] = n.Branches[i].Forward(t, train)
	}
	return logits
}

// BackwardAll back-propagates per-exit logit gradients produced by
// ForwardAll(train=true). gradLogits[i] may be nil to skip that exit's
// loss contribution.
func (n *Network) BackwardAll(gradLogits []*tensor.Tensor) {
	m := n.NumExits()
	if len(gradLogits) != m {
		panic(fmt.Sprintf("multiexit: BackwardAll got %d gradients for %d exits", len(gradLogits), m))
	}
	var downstream *tensor.Tensor
	for i := m - 1; i >= 0; i-- {
		var g *tensor.Tensor
		if gradLogits[i] != nil {
			g = n.Branches[i].Backward(gradLogits[i])
		}
		if downstream != nil {
			if g == nil {
				g = downstream
			} else {
				g.AddInPlace(downstream)
			}
		}
		if g == nil {
			// No loss signal flows through this or any later exit.
			downstream = nil
			continue
		}
		downstream = n.Segments[i].Backward(g)
	}
}

// State is a suspended inference: the trunk activation after the segment
// feeding exit NextExit-1, allowing incremental continuation to deeper
// exits without recomputing shallow trunk work. It is what the paper's
// runtime checkpoints to FRAM between power cycles.
type State struct {
	// Trunk is t_i, the activation after segment i.
	Trunk *tensor.Tensor
	// Exit is the index i of the deepest exit already computable from
	// Trunk (i.e. Trunk feeds Branches[Exit]).
	Exit int
	// Logits of exit Exit, already computed.
	Logits *tensor.Tensor
}

// InferTo runs inference on a single image (CHW or 1CHW) up to the given
// exit, returning the suspended state. It is the runtime's entry point
// when an event fires and exit is chosen from available energy.
func (n *Network) InferTo(img *tensor.Tensor, exit int) *State {
	if exit < 0 || exit >= n.NumExits() {
		panic(fmt.Sprintf("multiexit: exit %d out of range [0,%d)", exit, n.NumExits()))
	}
	x := img
	if x.Rank() == 3 {
		s := x.Shape()
		x = x.Reshape(1, s[0], s[1], s[2])
	}
	t := x
	for i := 0; i <= exit; i++ {
		t = n.Segments[i].Forward(t, false)
	}
	logits := n.Branches[exit].Forward(t, false)
	return &State{Trunk: t, Exit: exit, Logits: logits}
}

// Resume continues a suspended inference to a deeper exit. Only segments
// (state.Exit, exit] and branch exit are evaluated — the incremental
// inference of §II. It panics if exit does not exceed state.Exit.
func (n *Network) Resume(state *State, exit int) *State {
	if exit <= state.Exit || exit >= n.NumExits() {
		panic(fmt.Sprintf("multiexit: cannot resume from exit %d to exit %d", state.Exit, exit))
	}
	t := state.Trunk
	for i := state.Exit + 1; i <= exit; i++ {
		t = n.Segments[i].Forward(t, false)
	}
	logits := n.Branches[exit].Forward(t, false)
	return &State{Trunk: t, Exit: exit, Logits: logits}
}

// Confidence returns the normalized-entropy-based confidence of the
// state's result in [0, 1]: 1 − H(p)/log(classes). Higher is more
// confident; the runtime compares it against a threshold to decide
// whether incremental inference is worthwhile.
func (s *State) Confidence() float64 {
	probs := nn.Softmax(s.Logits)
	return 1 - nn.NormalizedEntropy(probs.Data)
}

// Predicted returns the argmax class of the state's logits.
func (s *State) Predicted() int { return s.Logits.ArgMax() }

// weightedPath returns the conv/dense layers, in execution order, on exit
// j's direct path: trunk segments 0..j followed by branch j. ReLU, pool,
// and flatten layers carry no MACs and are skipped.
func (n *Network) weightedPath(j int) []nn.Layer {
	var path []nn.Layer
	appendWeighted := func(s *nn.Sequential) {
		for _, l := range s.Layers {
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				path = append(path, l)
			}
		}
	}
	for k := 0; k <= j; k++ {
		appendWeighted(n.Segments[k])
	}
	appendWeighted(n.Branches[j])
	return path
}

// inRatio returns the fraction of a layer's inputs surviving channel
// pruning.
func inRatio(l nn.Layer) float64 {
	switch layer := l.(type) {
	case *nn.Conv2D:
		return float64(layer.EffectiveInC()) / float64(layer.InC)
	case *nn.Dense:
		return float64(layer.EffectiveIn()) / float64(layer.In)
	}
	return 1
}

// pathFLOPs sums MACs over an ordered weighted path applying the paper's
// chain rule for channel pruning: pruning the input channels of layer l+1
// also eliminates the corresponding output channels of layer l (§III-A
// "It reduces the FLOPs of the previous layer by reducing the number of
// output channels"). Each layer's own FLOPs() already accounts for its
// input-channel pruning; the consumer's ratio scales its output side. The
// final classifier's outputs are all needed, so its ratio is 1.
func pathFLOPs(path []nn.Layer) int64 {
	var f float64
	for i, l := range path {
		out := 1.0
		if i+1 < len(path) {
			out = inRatio(path[i+1])
		}
		f += float64(l.FLOPs()) * out
	}
	return int64(f + 0.5)
}

// ExitFLOPs returns the per-sample MACs to produce exit i's result by
// direct execution from the input image: trunk segments 0..i plus branch
// i, with chain-pruning applied. This is the quantity the paper reports
// per exit (0.4452/1.2602/1.6202 MFLOPs before compression).
func (n *Network) ExitFLOPs(i int) int64 {
	return pathFLOPs(n.weightedPath(i))
}

// MarginalFLOPs returns the additional MACs needed to go from exit i's
// suspended state to exit j's result (trunk segments i+1..j plus branch
// j). For i < 0 it equals ExitFLOPs(j). Like the paper, resume cost uses
// the chain approximation (no recompute surcharge for trunk channels the
// shallower execution skipped).
func (n *Network) MarginalFLOPs(i, j int) int64 {
	if j <= i {
		panic(fmt.Sprintf("multiexit: MarginalFLOPs needs j > i, got i=%d j=%d", i, j))
	}
	if i < 0 {
		return n.ExitFLOPs(j)
	}
	full := n.weightedPath(j)
	// Drop the prefix covered by segments 0..i.
	var prefix int
	for k := 0; k <= i; k++ {
		for _, l := range n.Segments[k].Layers {
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				prefix++
			}
		}
	}
	return pathFLOPs(full[prefix:])
}

// ModelFLOPs returns the whole-network MAC count with every layer counted
// once (all trunk segments plus all branches), chain-pruned along each
// layer's primary consumer (trunk successor for trunk layers, branch
// successor within branches). This is the paper's F_model = Σ_i flop_i
// with flop_i the FLOPs exclusive to exit i, constrained by F_target in
// Eq. 8.
func (n *Network) ModelFLOPs() int64 {
	m := n.NumExits()
	var f float64
	firstWeighted := func(s *nn.Sequential) nn.Layer {
		for _, l := range s.Layers {
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				return l
			}
		}
		return nil
	}
	chainSum := func(layers []nn.Layer, successor nn.Layer) {
		for i, l := range layers {
			out := 1.0
			if i+1 < len(layers) {
				out = inRatio(layers[i+1])
			} else if successor != nil {
				out = inRatio(successor)
			}
			f += float64(l.FLOPs()) * out
		}
	}
	weighted := func(s *nn.Sequential) []nn.Layer {
		var ls []nn.Layer
		for _, l := range s.Layers {
			switch l.(type) {
			case *nn.Conv2D, *nn.Dense:
				ls = append(ls, l)
			}
		}
		return ls
	}
	for i := 0; i < m; i++ {
		var successor nn.Layer
		if i+1 < m {
			successor = firstWeighted(n.Segments[i+1])
		} else {
			successor = firstWeighted(n.Branches[i])
		}
		chainSum(weighted(n.Segments[i]), successor)
		chainSum(weighted(n.Branches[i]), nil)
	}
	return int64(f + 0.5)
}

// WeightBytes returns total weight storage over all segments and branches
// at current quantization, rounding each layer up to whole bytes.
func (n *Network) WeightBytes() int64 {
	var b int64
	for _, s := range n.Segments {
		b += s.WeightBytes()
	}
	for _, br := range n.Branches {
		b += br.WeightBytes()
	}
	return b
}

// CompressibleLayers returns the conv/dense layers in the paper's Fig. 4
// order: trunk and branch layers interleaved by depth (Conv1, ConvB1,
// Conv2, ConvB2, Conv3, Conv4, FC-B1, FC-B21, FC-B22, FC-B31, FC-B32 for
// LeNet-EE). Only layers with weights are returned.
func (n *Network) CompressibleLayers() []nn.Layer {
	var convs, fcs []nn.Layer
	m := n.NumExits()
	for i := 0; i < m; i++ {
		for _, l := range n.Segments[i].Layers {
			switch l.(type) {
			case *nn.Conv2D:
				convs = append(convs, l)
			case *nn.Dense:
				fcs = append(fcs, l)
			}
		}
		for _, l := range n.Branches[i].Layers {
			switch l.(type) {
			case *nn.Conv2D:
				convs = append(convs, l)
			case *nn.Dense:
				fcs = append(fcs, l)
			}
		}
	}
	return append(convs, fcs...)
}

// SegmentOfLayer returns the index of the trunk segment or branch
// (segment index, isBranch) containing the named layer, or (-1, false).
func (n *Network) SegmentOfLayer(name string) (int, bool) {
	for i, s := range n.Segments {
		if s.FindLayer(name) != nil {
			return i, false
		}
	}
	for i, b := range n.Branches {
		if b.FindLayer(name) != nil {
			return i, true
		}
	}
	return -1, false
}

// EarliestExitUsing returns the shallowest exit whose computation includes
// the named layer. Compression of that layer therefore affects this exit
// and every deeper one — the coupling the exit-guided reward exploits.
func (n *Network) EarliestExitUsing(name string) int {
	seg, isBranch := n.SegmentOfLayer(name)
	if seg < 0 {
		return -1
	}
	if isBranch {
		return seg
	}
	return seg
}
