package multiexit_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/compress"
	"repro/internal/multiexit"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestSpecRoundTripLeNetEE verifies a compressed LeNet-EE survives
// multiexit.Describe → multiexit.FromSpec with its structure, names, and cost accounting
// intact — the invariant the deployment artifact depends on.
func TestSpecRoundTripLeNetEE(t *testing.T) {
	net := multiexit.LeNetEE(tensor.NewRNG(3))
	if err := compress.Apply(net, compress.Fig1bNonuniform()); err != nil {
		t.Fatal(err)
	}
	spec, err := multiexit.Describe(net)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := multiexit.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	if rebuilt.NumExits() != net.NumExits() || rebuilt.Classes != net.Classes {
		t.Fatalf("rebuilt network has %d exits / %d classes, want %d / %d",
			rebuilt.NumExits(), rebuilt.Classes, net.NumExits(), net.Classes)
	}
	for i := 0; i < net.NumExits(); i++ {
		if got, want := rebuilt.ExitFLOPs(i), net.ExitFLOPs(i); got != want {
			t.Errorf("exit %d FLOPs %d, want %d", i, got, want)
		}
	}
	if got, want := rebuilt.WeightBytes(), net.WeightBytes(); got != want {
		t.Errorf("weight bytes %d, want %d", got, want)
	}

	// Parameter names and shapes must match pairwise so weights can be
	// restored positionally.
	orig, reb := net.Params(), rebuilt.Params()
	if len(orig) != len(reb) {
		t.Fatalf("rebuilt network has %d params, want %d", len(reb), len(orig))
	}
	for i := range orig {
		if orig[i].Name != reb[i].Name {
			t.Errorf("param %d name %q, want %q", i, reb[i].Name, orig[i].Name)
		}
		if !reflect.DeepEqual(orig[i].Value.Shape(), reb[i].Value.Shape()) {
			t.Errorf("param %q shape %v, want %v", orig[i].Name, reb[i].Value.Shape(), orig[i].Value.Shape())
		}
	}

	// Copying the weights over must reproduce inference bit-for-bit.
	for i := range orig {
		copy(reb[i].Value.Data, orig[i].Value.Data)
	}
	rng := tensor.NewRNG(9)
	img := tensor.New(3, 32, 32)
	for i := range img.Data {
		img.Data[i] = rng.Float32()
	}
	for exit := 0; exit < net.NumExits(); exit++ {
		a := net.InferTo(img, exit)
		b := rebuilt.InferTo(img, exit)
		if !reflect.DeepEqual(a.Logits.Data, b.Logits.Data) {
			t.Fatalf("exit %d logits diverge after round trip", exit)
		}
	}

	// The spec itself must survive JSON (the artifact manifest embeds it).
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded multiexit.Spec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&decoded, spec) {
		t.Fatal("spec changed across JSON round trip")
	}
}

// TestSpecRoundTripBuilder checks a builder-made architecture (conv
// branches, hidden heads) round-trips too.
func TestSpecRoundTripBuilder(t *testing.T) {
	b := multiexit.NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.ExitConv("early", 8, 0, true)
	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("final", 32)
	net, err := b.Build(tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := multiexit.Describe(net)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := multiexit.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.NumExits() != net.NumExits() {
		t.Fatalf("exits %d, want %d", rebuilt.NumExits(), net.NumExits())
	}
	for i := 0; i < net.NumExits(); i++ {
		if rebuilt.ExitFLOPs(i) != net.ExitFLOPs(i) {
			t.Errorf("exit %d FLOPs diverge", i)
		}
	}
}

// TestSpecRejects verifies multiexit.Describe refuses non-deployable layers and
// multiexit.FromSpec refuses malformed specs.
func TestSpecRejects(t *testing.T) {
	drop := nn.NewDropout("drop", 0.5, 1)
	fc := nn.NewDense("fc", 4, 2)
	fc.Final = true
	net := &multiexit.Network{
		Segments: []*nn.Sequential{nn.NewSequential("s", drop)},
		Branches: []*nn.Sequential{nn.NewSequential("b", nn.NewFlatten("f"), fc)},
		Classes:  2,
	}
	if _, err := multiexit.Describe(net); err == nil {
		t.Fatal("multiexit.Describe must reject dropout layers")
	}

	bad := []multiexit.Spec{
		{Classes: 2, Segments: []multiexit.SequentialSpec{{Name: "s"}}}, // branch count mismatch
		{Classes: 2,
			Segments: []multiexit.SequentialSpec{{Name: "s", Layers: []multiexit.LayerSpec{{Kind: "warp", Name: "w"}}}},
			Branches: []multiexit.SequentialSpec{{Name: "b"}}},
		{Classes: 2,
			Segments: []multiexit.SequentialSpec{{Name: "s", Layers: []multiexit.LayerSpec{{Kind: multiexit.LayerConv, Name: "c"}}}},
			Branches: []multiexit.SequentialSpec{{Name: "b"}}}, // zero conv geometry
		{Classes: 2,
			Segments: []multiexit.SequentialSpec{{Name: "s", Layers: []multiexit.LayerSpec{{
				Kind: multiexit.LayerDense, Name: "d", In: 4, Out: 2, Kept: 9}}}},
			Branches: []multiexit.SequentialSpec{{Name: "b"}}}, // kept > in
	}
	for i, s := range bad {
		if _, err := multiexit.FromSpec(&s); err == nil {
			t.Errorf("spec %d: multiexit.FromSpec accepted a malformed spec", i)
		}
	}
}
