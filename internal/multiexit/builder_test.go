package multiexit

import (
	"testing"

	"repro/internal/tensor"
)

func TestBuilderTwoExitNetwork(t *testing.T) {
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.Exit("e1", 32)
	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e2", 0)
	net, err := b.Build(tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumExits() != 2 {
		t.Fatalf("%d exits", net.NumExits())
	}
	img := tensor.New(3, 32, 32)
	tensor.FillUniform(img, tensor.NewRNG(2), 0, 1)
	st := net.InferTo(img, 0)
	if st.Logits.Len() != 10 {
		t.Fatal("exit-1 logits wrong")
	}
	st = net.Resume(st, 1)
	if st.Logits.Len() != 10 {
		t.Fatal("exit-2 logits wrong")
	}
}

func TestBuilderExitConvBranch(t *testing.T) {
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 6, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.ExitConv("e1", 8, 0, true)
	b.Conv("c2", 12, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e2", 24)
	net, err := b.Build(tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.CompressibleLayers()); got != 6 {
		t.Fatalf("%d compressible layers, want 6 (2 trunk conv + branch conv + 3 FC)", got)
	}
	if net.ExitFLOPs(0) >= net.ExitFLOPs(1) {
		t.Fatal("exit FLOPs must ascend")
	}
}

func TestBuilderRejectsTrailingTrunk(t *testing.T) {
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU()
	b.Exit("e1", 0)
	b.Conv("dangling", 8, 3, 1, 1)
	if _, err := b.Build(nil); err == nil {
		t.Fatal("trailing trunk layers accepted")
	}
}

func TestBuilderRejectsEmptySegment(t *testing.T) {
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0)
	b.Exit("e1", 0)
	b.Exit("e2", 0) // no trunk layers since e1
	if _, err := b.Build(nil); err == nil {
		t.Fatal("empty trunk segment accepted")
	}
}

func TestBuilderRejectsBadGeometry(t *testing.T) {
	b := NewBuilder(3, 8, 8, 10)
	b.Conv("c1", 8, 9, 1, 0) // kernel exceeds input
	b.Exit("e1", 0)
	if _, err := b.Build(nil); err == nil {
		t.Fatal("oversized kernel accepted")
	}
}

func TestBuilderRejectsNoExits(t *testing.T) {
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0)
	if _, err := b.Build(nil); err == nil {
		t.Fatal("exit-less network accepted")
	}
}

func TestBuilderRejectsBadClasses(t *testing.T) {
	b := NewBuilder(3, 32, 32, 1)
	b.Conv("c1", 8, 5, 1, 0)
	b.Exit("e1", 0)
	if _, err := b.Build(nil); err == nil {
		t.Fatal("single-class network accepted")
	}
}

func TestBuilderNetworkTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	b := NewBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.Exit("e1", 24)
	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e2", 0)
	net, err := b.Build(tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	train, test := tinySets(t)
	if _, err := Train(net, train, TrainConfig{Epochs: 3, BatchSize: 25, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	accs := EvalExits(net, test)
	for i, a := range accs {
		if a < 0.2 {
			t.Errorf("builder-net exit %d accuracy %.3f too low", i+1, a)
		}
	}
}
