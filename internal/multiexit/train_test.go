package multiexit

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func tinySets(t *testing.T) (*dataset.Set, *dataset.Set) {
	t.Helper()
	// Easy, low-noise variant so a few epochs suffice.
	cfg := dataset.SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}
	return dataset.TrainTest(cfg, 300, 120)
}

func TestTrainImprovesAllExits(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	train, test := tinySets(t)
	net := LeNetEE(tensor.NewRNG(31))
	before := EvalExits(net, test)

	loss, err := Train(net, train, TrainConfig{Epochs: 5, BatchSize: 25, LR: 0.01, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("implausible final loss %v", loss)
	}
	after := EvalExits(net, test)
	for i := range after {
		if after[i] < 0.35 {
			t.Errorf("exit %d accuracy %.3f too low after training", i+1, after[i])
		}
		if after[i] <= before[i] {
			t.Errorf("exit %d did not improve: %.3f → %.3f", i+1, before[i], after[i])
		}
	}
}

func TestTrainRejectsEmptySet(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(1))
	if _, err := Train(net, &dataset.Set{}, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestTrainRejectsBadExitWeights(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(1))
	set := dataset.NewGenerator(dataset.SynthConfig{Seed: 1}).Generate(10)
	_, err := Train(net, set, TrainConfig{Epochs: 1, ExitWeights: []float64{1, 1}})
	if err == nil {
		t.Fatal("wrong-length exit weights accepted")
	}
}

func TestEvalExitsEmptySet(t *testing.T) {
	net := LeNetEE(tensor.NewRNG(1))
	accs := EvalExits(net, &dataset.Set{})
	for _, a := range accs {
		if a != 0 {
			t.Fatal("empty set should yield zero accuracies")
		}
	}
}

func TestBackwardAllWithNilGradients(t *testing.T) {
	// Skipping an exit's loss must not crash and must still propagate
	// gradients from deeper exits through the trunk.
	net := LeNetEE(tensor.NewRNG(41))
	x := tensor.New(2, 3, 32, 32)
	tensor.FillUniform(x, tensor.NewRNG(42), 0, 1)
	logits := net.ForwardAll(x, true)
	grads := make([]*tensor.Tensor, 3)
	grads[2] = tensor.New(logits[2].Shape()...)
	grads[2].Fill(0.1)
	net.BackwardAll(grads)

	conv1 := net.Segments[0].FindLayer("Conv1")
	var gradSum float64
	for _, p := range conv1.Params() {
		gradSum += p.Grad.AbsSum()
	}
	if gradSum == 0 {
		t.Fatal("final-exit gradient did not reach Conv1 through the trunk")
	}
	// Branch 0 must have no gradient (its loss was skipped).
	fcB1 := net.Branches[0].FindLayer("FC-B1")
	for _, p := range fcB1.Params() {
		if p.Grad.AbsSum() != 0 {
			t.Fatal("skipped exit accumulated gradient")
		}
	}
}
