package multiexit

import (
	"fmt"

	"repro/internal/nn"
)

// Layer-spec kinds. Every layer kind the architecture builders emit is
// representable, so any built (and compressed) network round-trips.
const (
	LayerConv    = "conv"
	LayerDense   = "dense"
	LayerReLU    = "relu"
	LayerMaxPool = "maxpool"
	LayerAvgPool = "avgpool"
	LayerFlatten = "flatten"
)

// LayerSpec is the declarative form of one nn layer: enough to rebuild
// the layer exactly — including the compression metadata (kept channels,
// weight bitwidth, activation bitwidth) a deployed network carries — but
// holding no weights. Weights travel separately, keyed by parameter name.
type LayerSpec struct {
	Kind string `json:"kind"`
	Name string `json:"name"`

	// Conv geometry.
	InC     int `json:"inC,omitempty"`
	OutC    int `json:"outC,omitempty"`
	KH      int `json:"kh,omitempty"`
	KW      int `json:"kw,omitempty"`
	StrideH int `json:"strideH,omitempty"`
	StrideW int `json:"strideW,omitempty"`
	PadH    int `json:"padH,omitempty"`
	PadW    int `json:"padW,omitempty"`
	// NomH/NomW are the builder-declared nominal input dims that make
	// FLOPs accounting (and plan compilation) possible before any Forward.
	NomH int `json:"nomH,omitempty"`
	NomW int `json:"nomW,omitempty"`

	// Dense geometry.
	In    int  `json:"in,omitempty"`
	Out   int  `json:"out,omitempty"`
	Final bool `json:"final,omitempty"`

	// Compression metadata shared by conv and dense layers. Kept is
	// KeptInC (conv) or KeptIn (dense); 0 means unpruned.
	Kept       int `json:"kept,omitempty"`
	WeightBits int `json:"weightBits,omitempty"`
	ActBits    int `json:"actBits,omitempty"`

	// Pool geometry.
	Kernel int `json:"kernel,omitempty"`
	Stride int `json:"stride,omitempty"`
}

// SequentialSpec is the declarative form of one trunk segment or exit
// branch: its name and ordered layers.
type SequentialSpec struct {
	Name   string      `json:"name"`
	Layers []LayerSpec `json:"layers"`
}

// Spec is the declarative form of a multi-exit network's architecture:
// the structure (trunk segments and exit branches as ordered layer
// lists) without weights. It is pure data — JSON-serializable — so a
// deployment artifact can embed it and a loader can rebuild the exact
// network, parameter names and compression metadata included.
type Spec struct {
	Classes  int              `json:"classes"`
	Segments []SequentialSpec `json:"segments"`
	Branches []SequentialSpec `json:"branches"`
}

// Describe captures the network's architecture as a Spec. It fails on
// layer types outside the deployable set (conv, dense, ReLU, max/avg
// pool, flatten) — e.g. Dropout, which is a training-only construct.
func Describe(net *Network) (*Spec, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s := &Spec{Classes: net.Classes}
	for i, seg := range net.Segments {
		ls, err := describeSequential(seg)
		if err != nil {
			return nil, fmt.Errorf("multiexit: segment %d: %w", i, err)
		}
		s.Segments = append(s.Segments, SequentialSpec{Name: seg.Name(), Layers: ls})
	}
	for i, br := range net.Branches {
		ls, err := describeSequential(br)
		if err != nil {
			return nil, fmt.Errorf("multiexit: branch %d: %w", i, err)
		}
		s.Branches = append(s.Branches, SequentialSpec{Name: br.Name(), Layers: ls})
	}
	return s, nil
}

func describeSequential(seq *nn.Sequential) ([]LayerSpec, error) {
	specs := make([]LayerSpec, 0, len(seq.Layers))
	for _, l := range seq.Layers {
		switch layer := l.(type) {
		case *nn.Conv2D:
			specs = append(specs, LayerSpec{
				Kind: LayerConv, Name: layer.Name(),
				InC: layer.InC, OutC: layer.OutC,
				KH: layer.KH, KW: layer.KW,
				StrideH: layer.StrideH, StrideW: layer.StrideW,
				PadH: layer.PadH, PadW: layer.PadW,
				NomH: layer.NomH, NomW: layer.NomW,
				Kept: layer.KeptInC, WeightBits: layer.WeightBitsPerValue,
				ActBits: layer.ActBits,
			})
		case *nn.Dense:
			specs = append(specs, LayerSpec{
				Kind: LayerDense, Name: layer.Name(),
				In: layer.In, Out: layer.Out, Final: layer.Final,
				Kept: layer.KeptIn, WeightBits: layer.WeightBitsPerValue,
				ActBits: layer.ActBits,
			})
		case *nn.ReLU:
			specs = append(specs, LayerSpec{Kind: LayerReLU, Name: layer.Name()})
		case *nn.MaxPool2D:
			specs = append(specs, LayerSpec{
				Kind: LayerMaxPool, Name: layer.Name(),
				Kernel: layer.Kernel, Stride: layer.Stride,
			})
		case *nn.AvgPool2D:
			specs = append(specs, LayerSpec{
				Kind: LayerAvgPool, Name: layer.Name(),
				Kernel: layer.Kernel, Stride: layer.Stride,
			})
		case *nn.Flatten:
			specs = append(specs, LayerSpec{Kind: LayerFlatten, Name: layer.Name()})
		default:
			return nil, fmt.Errorf("layer %q (%T) is not deployable", l.Name(), l)
		}
	}
	return specs, nil
}

// FromSpec rebuilds a network from its Spec. Weights are zero — load
// them afterwards (by parameter name) to restore a deployment. The
// rebuilt network is structurally identical to the described one:
// same layer names, geometry, and compression metadata, so FLOPs,
// weight-size accounting, and plan compilation all reproduce exactly.
func FromSpec(s *Spec) (*Network, error) {
	if len(s.Segments) != len(s.Branches) {
		return nil, fmt.Errorf("multiexit: spec has %d segments but %d branches", len(s.Segments), len(s.Branches))
	}
	net := &Network{Classes: s.Classes}
	for i, ss := range s.Segments {
		seq, err := sequentialFromSpec(ss.Name, ss.Layers)
		if err != nil {
			return nil, fmt.Errorf("multiexit: segment %d: %w", i, err)
		}
		net.Segments = append(net.Segments, seq)
	}
	for i, ss := range s.Branches {
		seq, err := sequentialFromSpec(ss.Name, ss.Layers)
		if err != nil {
			return nil, fmt.Errorf("multiexit: branch %d: %w", i, err)
		}
		net.Branches = append(net.Branches, seq)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// checkCompressionMeta bounds the pruning/quantization metadata against
// the layer's input width so a corrupted spec cannot build a layer whose
// accounting is out of range.
func checkCompressionMeta(ls LayerSpec, inputs int) error {
	if ls.Kept < 0 || ls.Kept > inputs {
		return fmt.Errorf("kept count %d outside [0, %d]", ls.Kept, inputs)
	}
	if ls.WeightBits < 0 || ls.WeightBits > 32 {
		return fmt.Errorf("weight bits %d outside [0, 32]", ls.WeightBits)
	}
	if ls.ActBits < 0 || ls.ActBits > 32 {
		return fmt.Errorf("activation bits %d outside [0, 32]", ls.ActBits)
	}
	return nil
}

func sequentialFromSpec(name string, specs []LayerSpec) (*nn.Sequential, error) {
	seq := nn.NewSequential(name)
	for _, ls := range specs {
		switch ls.Kind {
		case LayerConv:
			if ls.InC <= 0 || ls.OutC <= 0 || ls.KH <= 0 || ls.KW <= 0 ||
				ls.StrideH <= 0 || ls.StrideW <= 0 || ls.PadH < 0 || ls.PadW < 0 {
				return nil, fmt.Errorf("conv %q has invalid geometry %+v", ls.Name, ls)
			}
			l := nn.NewConv2D(ls.Name, ls.InC, ls.OutC, ls.KH, ls.KW, ls.StrideH, ls.PadH)
			// The constructor is square-only; restore any rectangular
			// stride/pad the original layer carried.
			l.StrideW, l.PadW = ls.StrideW, ls.PadW
			l.NomH, l.NomW = ls.NomH, ls.NomW
			if err := checkCompressionMeta(ls, ls.InC); err != nil {
				return nil, fmt.Errorf("conv %q: %w", ls.Name, err)
			}
			l.KeptInC = ls.Kept
			if ls.WeightBits > 0 {
				l.WeightBitsPerValue = ls.WeightBits
			}
			l.ActBits = ls.ActBits
			seq.Add(l)
		case LayerDense:
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("dense %q has invalid dims in=%d out=%d", ls.Name, ls.In, ls.Out)
			}
			l := nn.NewDense(ls.Name, ls.In, ls.Out)
			l.Final = ls.Final
			if err := checkCompressionMeta(ls, ls.In); err != nil {
				return nil, fmt.Errorf("dense %q: %w", ls.Name, err)
			}
			l.KeptIn = ls.Kept
			if ls.WeightBits > 0 {
				l.WeightBitsPerValue = ls.WeightBits
			}
			l.ActBits = ls.ActBits
			seq.Add(l)
		case LayerReLU:
			seq.Add(nn.NewReLU(ls.Name))
		case LayerMaxPool:
			if ls.Kernel <= 0 || ls.Stride <= 0 {
				return nil, fmt.Errorf("maxpool %q has invalid kernel/stride %d/%d", ls.Name, ls.Kernel, ls.Stride)
			}
			seq.Add(nn.NewMaxPool2D(ls.Name, ls.Kernel, ls.Stride))
		case LayerAvgPool:
			if ls.Kernel <= 0 || ls.Stride <= 0 {
				return nil, fmt.Errorf("avgpool %q has invalid kernel/stride %d/%d", ls.Name, ls.Kernel, ls.Stride)
			}
			seq.Add(nn.NewAvgPool2D(ls.Name, ls.Kernel, ls.Stride))
		case LayerFlatten:
			seq.Add(nn.NewFlatten(ls.Name))
		default:
			return nil, fmt.Errorf("unknown layer kind %q (layer %q)", ls.Kind, ls.Name)
		}
	}
	return seq, nil
}
