package multiexit

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Paper constants for the LeNet-EE architecture (§V-A): the extended
// four-conv LeNet with two early exits. Our channel allocation (below)
// reproduces the paper's per-exit FLOPs within ~1% and the 580 KB
// full-precision weight storage within ~1%; EXPERIMENTS.md records the
// exact deltas.
const (
	// PaperExit1FLOPs..PaperExit3FLOPs are the per-exit MAC counts the
	// paper reports (0.4452M, 1.2602M, 1.6202M).
	PaperExit1FLOPs = 445_200
	PaperExit2FLOPs = 1_260_200
	PaperExit3FLOPs = 1_620_200
	// PaperWeightBytes is the reported fp32 weight storage (580 KB).
	PaperWeightBytes = 580 * 1024
	// PaperExit1Acc..PaperExit3Acc are the full-precision CIFAR-10
	// accuracies of the three exits (§V-A).
	PaperExit1Acc = 0.649
	PaperExit2Acc = 0.720
	PaperExit3Acc = 0.730
)

// LeNetEE builds the paper's multi-exit LeNet for 32×32×3 inputs and 10
// classes:
//
//	Seg0: Conv1 3→6 5×5            → 6@28×28 → pool → 6@14×14
//	  B0: ConvB1 6→8 3×3 p1 → pool → 8@7×7 → FC-B1 392→10     (Exit 1)
//	Seg1: Conv2 6→36 5×5           → 36@10×10 → pool → 36@5×5
//	  B1: ConvB2 36→36 3×3 p1 → FC-B21 900→80 → FC-B22 80→10  (Exit 2)
//	Seg2: Conv3 36→32 3×3 p1 → Conv4 32→64 3×3 p1 → pool → 64@2×2
//	  B2: FC-B31 256→96 → FC-B32 96→10                         (Exit 3)
//
// Weights are He-initialized from rng (pass nil to leave them zero for
// pure accounting use).
func LeNetEE(rng *tensor.RNG) *Network {
	conv1 := nn.NewConv2D("Conv1", 3, 6, 5, 5, 1, 0)
	conv1.NomH, conv1.NomW = 32, 32
	seg0 := nn.NewSequential("seg0",
		conv1,
		nn.NewReLU("Conv1.relu"),
		nn.NewMaxPool2D("Conv1.pool", 2, 2),
	)

	convB1 := nn.NewConv2D("ConvB1", 6, 8, 3, 3, 1, 1)
	convB1.NomH, convB1.NomW = 14, 14
	fcB1 := nn.NewDense("FC-B1", 8*7*7, 10)
	fcB1.Final = true
	branch0 := nn.NewSequential("branch0",
		convB1,
		nn.NewReLU("ConvB1.relu"),
		nn.NewMaxPool2D("ConvB1.pool", 2, 2),
		nn.NewFlatten("ConvB1.flatten"),
		fcB1,
	)

	conv2 := nn.NewConv2D("Conv2", 6, 36, 5, 5, 1, 0)
	conv2.NomH, conv2.NomW = 14, 14
	seg1 := nn.NewSequential("seg1",
		conv2,
		nn.NewReLU("Conv2.relu"),
		nn.NewMaxPool2D("Conv2.pool", 2, 2),
	)

	convB2 := nn.NewConv2D("ConvB2", 36, 36, 3, 3, 1, 1)
	convB2.NomH, convB2.NomW = 5, 5
	fcB21 := nn.NewDense("FC-B21", 36*5*5, 80)
	fcB22 := nn.NewDense("FC-B22", 80, 10)
	fcB22.Final = true
	branch1 := nn.NewSequential("branch1",
		convB2,
		nn.NewReLU("ConvB2.relu"),
		nn.NewFlatten("ConvB2.flatten"),
		fcB21,
		nn.NewReLU("FC-B21.relu"),
		fcB22,
	)

	conv3 := nn.NewConv2D("Conv3", 36, 32, 3, 3, 1, 1)
	conv3.NomH, conv3.NomW = 5, 5
	conv4 := nn.NewConv2D("Conv4", 32, 64, 3, 3, 1, 1)
	conv4.NomH, conv4.NomW = 5, 5
	seg2 := nn.NewSequential("seg2",
		conv3,
		nn.NewReLU("Conv3.relu"),
		conv4,
		nn.NewReLU("Conv4.relu"),
		nn.NewMaxPool2D("Conv4.pool", 2, 2),
	)

	fcB31 := nn.NewDense("FC-B31", 64*2*2, 96)
	fcB32 := nn.NewDense("FC-B32", 96, 10)
	fcB32.Final = true
	branch2 := nn.NewSequential("branch2",
		nn.NewFlatten("final.flatten"),
		fcB31,
		nn.NewReLU("FC-B31.relu"),
		fcB32,
	)

	net := &Network{
		Segments: []*nn.Sequential{seg0, seg1, seg2},
		Branches: []*nn.Sequential{branch0, branch1, branch2},
		Classes:  10,
	}
	if rng != nil {
		for _, s := range net.Segments {
			nn.InitHe(s, rng)
		}
		for _, b := range net.Branches {
			nn.InitHe(b, rng)
		}
	}
	return net
}

// LeNetEELayerNames is the Fig. 4 layer ordering for the LeNet-EE
// architecture.
var LeNetEELayerNames = []string{
	"Conv1", "ConvB1", "Conv2", "ConvB2", "Conv3", "Conv4",
	"FC-B1", "FC-B21", "FC-B22", "FC-B31", "FC-B32",
}
