package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	journalExt = ".journal"
	finalExt   = ".json"
)

// JobJournal checkpoints one grid job: line 1 is the job's spec, every
// subsequent line one completed point's result, each append fsynced
// before the point is acknowledged. Finalize atomically writes the final
// result document and retires the journal; a crash at any instant leaves
// either a replayable journal or the finished document, never neither.
type JobJournal struct {
	s    *Store
	id   string
	f    File
	path string
}

// NewJobJournal creates (truncating any stale leftover) the journal for
// job id, writing and fsyncing the spec header line. spec must be a
// single line of JSON.
func (s *Store) NewJobJournal(id string, spec []byte) (*JobJournal, error) {
	if bytes.ContainsRune(spec, '\n') {
		return nil, fmt.Errorf("store: job %s spec is not a single line", id)
	}
	path := filepath.Join(s.jobsDir(), id+journalExt)
	f, err := s.fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: create journal %s: %w", id, err)
	}
	j := &JobJournal{s: s, id: id, f: f, path: path}
	if err := j.Append(spec); err != nil {
		f.Close()
		_ = s.fs.Remove(path)
		return nil, err
	}
	return j, nil
}

// Append journals one newline-free line and flushes it to stable
// storage. A torn final line from a crash mid-Append is dropped at
// recovery, so the point it described simply re-runs.
func (j *JobJournal) Append(line []byte) error {
	if bytes.ContainsRune(line, '\n') {
		return fmt.Errorf("store: journal %s line contains newline", j.id)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: append journal %s: %w", j.id, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync journal %s: %w", j.id, err)
	}
	return nil
}

// Finalize durably writes the job's final result document and retires
// the journal. After the atomic write lands, the journal is redundant —
// a crash before its removal is resolved at recovery in favor of the
// final document.
func (j *JobJournal) Finalize(final []byte) error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: close journal %s: %w", j.id, err)
	}
	if err := j.s.atomicWrite(filepath.Join(j.s.jobsDir(), j.id+finalExt), final); err != nil {
		return err
	}
	if err := j.s.fs.Remove(j.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: retire journal %s: %w", j.id, err)
	}
	return nil
}

// Abort closes and removes the journal without a final document — the
// job was canceled on purpose and must not resume at next boot.
func (j *JobJournal) Abort() error {
	_ = j.f.Close()
	if err := j.s.fs.Remove(j.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: abort journal %s: %w", j.id, err)
	}
	return nil
}

// Close releases the journal's file handle while keeping the journal on
// disk — a shutdown mid-run closes this way so the job resumes at next
// boot instead of being forgotten (Abort) or finished (Finalize).
func (j *JobJournal) Close() error {
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: close journal %s: %w", j.id, err)
	}
	return nil
}

// OpenJobJournal reattaches to an existing journal for appending — the
// resume path after RecoverJobs reported the job unfinished. Any torn
// unterminated tail is truncated away first (via an atomic rewrite), so
// subsequent appends extend a well-formed journal.
func (s *Store) OpenJobJournal(id string) (*JobJournal, error) {
	path := filepath.Join(s.jobsDir(), id+journalExt)
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reopen journal %s: %w", id, err)
	}
	if i := bytes.LastIndexByte(raw, '\n'); i < 0 || i != len(raw)-1 {
		if i < 0 {
			raw = nil
		} else {
			raw = raw[:i+1]
		}
		if err := s.atomicWrite(path, raw); err != nil {
			return nil, err
		}
	}
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("store: reopen journal %s: %w", id, err)
	}
	return &JobJournal{s: s, id: id, f: f, path: path}, nil
}

// RemoveJob deletes a job's on-disk state (final document and any
// journal) — called when the server prunes old finished jobs so the data
// directory does not accumulate result sets forever.
func (s *Store) RemoveJob(id string) error {
	var firstErr error
	for _, path := range []string{
		filepath.Join(s.jobsDir(), id+finalExt),
		filepath.Join(s.jobsDir(), id+journalExt),
	} {
		if err := s.fs.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = fmt.Errorf("store: remove job %s: %w", id, err)
		}
	}
	return firstErr
}

// UnfinishedJob is a journal found at recovery: the job was mid-run when
// the process died. Spec is the header line; Lines are the completed
// point results, in completion order, torn tail dropped.
type UnfinishedJob struct {
	ID    string
	Spec  []byte
	Lines [][]byte
}

// FinishedJob is a final result document found at recovery.
type FinishedJob struct {
	ID    string
	Final []byte
}

// RecoverJobs scans the jobs directory. Jobs with a final document are
// returned as finished (a leftover journal beside one is retired); jobs
// with only a journal are returned as unfinished for resumption. Sorted
// by ID for deterministic boot order.
func (s *Store) RecoverJobs() ([]UnfinishedJob, []FinishedJob, error) {
	names, err := s.fs.ReadDir(s.jobsDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: list jobs: %w", err)
	}
	finals := make(map[string]bool)
	for _, name := range names {
		if id, ok := strings.CutSuffix(name, finalExt); ok {
			finals[id] = true
		}
	}
	var unfinished []UnfinishedJob
	var finished []FinishedJob
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, finalExt):
			id := strings.TrimSuffix(name, finalExt)
			data, err := s.fs.ReadFile(filepath.Join(s.jobsDir(), name))
			if err != nil {
				return nil, nil, fmt.Errorf("store: read final %s: %w", id, err)
			}
			finished = append(finished, FinishedJob{ID: id, Final: data})
		case strings.HasSuffix(name, journalExt):
			id := strings.TrimSuffix(name, journalExt)
			if finals[id] {
				// Crash landed between Finalize's atomic write and the
				// journal removal; the final document wins.
				_ = s.fs.Remove(filepath.Join(s.jobsDir(), name))
				continue
			}
			job, err := s.readJournal(id)
			if err != nil {
				return nil, nil, err
			}
			if job != nil {
				unfinished = append(unfinished, *job)
			}
		default:
			// Interrupted atomic write of a final document.
			if strings.HasSuffix(name, tmpSuffix) {
				_ = s.fs.Remove(filepath.Join(s.jobsDir(), name))
			}
		}
	}
	sort.Slice(unfinished, func(i, k int) bool { return unfinished[i].ID < unfinished[k].ID })
	sort.Slice(finished, func(i, k int) bool { return finished[i].ID < finished[k].ID })
	return unfinished, finished, nil
}

// readJournal parses one journal file. A journal so torn it has no
// intact spec header is removed and reported as nil — there is nothing
// to resume.
func (s *Store) readJournal(id string) (*UnfinishedJob, error) {
	path := filepath.Join(s.jobsDir(), id+journalExt)
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read journal %s: %w", id, err)
	}
	// Only newline-terminated lines are trustworthy: a crash mid-append
	// leaves an unterminated tail, which we drop (that point re-runs).
	if i := bytes.LastIndexByte(raw, '\n'); i < 0 {
		raw = nil
	} else {
		raw = raw[:i]
	}
	if len(raw) == 0 {
		s.log.Warn("store: journal has no intact header, dropping", "job", id)
		_ = s.fs.Remove(path)
		return nil, nil
	}
	lines := bytes.Split(raw, []byte("\n"))
	job := &UnfinishedJob{ID: id, Spec: lines[0]}
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		cp := make([]byte, len(line))
		copy(cp, line)
		job.Lines = append(job.Lines, cp)
	}
	cp := make([]byte, len(job.Spec))
	copy(cp, job.Spec)
	job.Spec = cp
	return job, nil
}
