// Package store is ehserved's durability layer: a crash-safe artifact
// store plus per-job checkpoint journals under one data directory.
//
// Every mutation follows the temp-file + fsync + rename discipline, so a
// file either exists with its full contents or not at all; an append-only
// manifest journal records which artifact IDs are live; and Open replays
// the manifest, strict-verifies every surviving artifact, and quarantines
// anything torn or corrupt instead of serving it. The same guarantees the
// source paper demands of intermittent inference — progress persists,
// partial work is never observable — applied to the daemon's own state.
//
// All filesystem access goes through the FS interface so the chaos layer
// can inject short writes and fsync failures without touching the disk
// semantics under test.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FS is the slice of filesystem the store needs. OSFS is the real one;
// chaos.FaultFS wraps any FS with injected faults.
type FS interface {
	// MkdirAll creates path and parents.
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadFile returns path's contents.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the file names in dir (no directories).
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory entry so a completed rename or create
	// survives power loss.
	SyncDir(dir string) error
}

// File is a writable handle that can be flushed to stable storage.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

const (
	artifactExt  = ".ehar"
	tmpSuffix    = ".tmp"
	manifestName = "manifest.log"
)

// manifestEntry is one line of the artifact manifest journal.
type manifestEntry struct {
	Op     string `json:"op"` // "put" or "del"
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Size   int    `json:"size,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
}

// Artifact is one recovered or stored deployment bundle.
type Artifact struct {
	ID   string
	Name string
	Data []byte
}

// RecoveryStats summarizes what Open found while replaying the data
// directory.
type RecoveryStats struct {
	// Restored artifacts passed size, checksum, and strict-decode checks.
	Restored int
	// Quarantined artifacts failed verification and were moved aside.
	Quarantined int
	// Orphans are files with no live manifest entry (leftover temp files,
	// deleted-but-unreaped artifacts) that were removed.
	Orphans int
	// TornManifest counts manifest lines dropped as unparsable — the tail
	// of an append cut short by a crash.
	TornManifest int
}

// Option configures Open.
type Option func(*Store)

// WithFS substitutes the filesystem implementation (chaos injection,
// tests).
func WithFS(fs FS) Option { return func(s *Store) { s.fs = fs } }

// WithVerify installs a strict decoder run against every artifact at
// recovery; a non-nil error quarantines the file.
func WithVerify(fn func(id string, data []byte) error) Option {
	return func(s *Store) { s.verify = fn }
}

// WithLogger routes recovery and quarantine notices; default discards.
func WithLogger(l *slog.Logger) Option { return func(s *Store) { s.log = l } }

// Store is a durable artifact store rooted at one data directory. All
// methods are safe for concurrent use.
type Store struct {
	dir    string
	fs     FS
	verify func(id string, data []byte) error
	log    *slog.Logger

	mu       sync.Mutex
	live     map[string]manifestEntry // id -> latest put entry
	order    []string                 // ids in first-put order
	seen     map[string]struct{}      // every id ever journaled, incl. deleted
	recovery RecoveryStats
}

func (s *Store) artifactsDir() string  { return filepath.Join(s.dir, "artifacts") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }
func (s *Store) jobsDir() string       { return filepath.Join(s.dir, "jobs") }
func (s *Store) manifestPath() string  { return filepath.Join(s.artifactsDir(), manifestName) }
func (s *Store) artifactPath(id string) string {
	return filepath.Join(s.artifactsDir(), id+artifactExt)
}

// Open mounts (creating if needed) the data directory at dir and runs
// recovery: replay the manifest, verify every live artifact, quarantine
// corruption, reap orphans, and compact the manifest.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:  dir,
		fs:   OSFS{},
		log:  slog.New(slog.DiscardHandler),
		live: make(map[string]manifestEntry),
		seen: make(map[string]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	for _, d := range []string{s.artifactsDir(), s.quarantineDir(), s.jobsDir()} {
		if err := s.fs.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", d, err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the data directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open found.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// recover replays the manifest and reconciles it against the artifacts
// directory.
func (s *Store) recover() error {
	raw, err := s.fs.ReadFile(s.manifestPath())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: read manifest: %w", err)
	}
	// Replay the journal. A line that fails to parse is the torn tail of
	// a crashed append: drop it and everything after — later lines were
	// written after the corruption point and cannot be trusted.
	dirty := false // does the on-disk manifest need compacting?
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ent manifestEntry
		if err := json.Unmarshal([]byte(line), &ent); err != nil || ent.ID == "" {
			s.recovery.TornManifest++
			dirty = true
			s.log.Warn("store: torn manifest entry dropped", "line", line)
			break
		}
		switch ent.Op {
		case "put":
			if _, seen := s.live[ent.ID]; !seen {
				s.order = append(s.order, ent.ID)
			} else {
				dirty = true // overwrite: journal has superseded lines
			}
			s.live[ent.ID] = ent
			s.seen[ent.ID] = struct{}{}
		case "del":
			delete(s.live, ent.ID)
			s.seen[ent.ID] = struct{}{}
			dirty = true
		default:
			s.recovery.TornManifest++
			dirty = true
			s.log.Warn("store: unknown manifest op dropped", "op", ent.Op)
		}
	}
	s.order = keepLive(s.order, s.live)

	// Verify every live artifact; quarantine what fails.
	for _, id := range s.order {
		ent := s.live[id]
		data, err := s.fs.ReadFile(s.artifactPath(id))
		switch {
		case err != nil:
			err = fmt.Errorf("read: %w", err)
		case len(data) != ent.Size:
			err = fmt.Errorf("size %d, manifest says %d", len(data), ent.Size)
		case checksum(data) != ent.SHA256:
			err = errors.New("checksum mismatch")
		case s.verify != nil:
			if verr := s.verify(id, data); verr != nil {
				err = fmt.Errorf("strict decode: %w", verr)
			}
		}
		if err != nil {
			s.quarantine(id, err)
			delete(s.live, id)
			dirty = true
			continue
		}
		s.recovery.Restored++
	}
	s.order = keepLive(s.order, s.live)

	// Reap orphans: files present on disk with no live manifest entry —
	// interrupted temp writes, deletes that crashed before the unlink.
	names, err := s.fs.ReadDir(s.artifactsDir())
	if err != nil {
		return fmt.Errorf("store: list artifacts: %w", err)
	}
	for _, name := range names {
		if name == manifestName {
			continue
		}
		id := strings.TrimSuffix(name, artifactExt)
		if _, ok := s.live[id]; ok && id != name {
			continue
		}
		s.recovery.Orphans++
		s.log.Warn("store: removing orphan", "file", name)
		if err := s.fs.Remove(filepath.Join(s.artifactsDir(), name)); err != nil {
			return fmt.Errorf("store: reap orphan %s: %w", name, err)
		}
	}

	// Compact only when replay found something to clean up (torn tail,
	// quarantine, overwrites, deletes): a clean boot must not rewrite —
	// and therefore cannot damage — a healthy manifest.
	if !dirty {
		return nil
	}
	return s.writeManifest()
}

// keepLive filters ids to those still present in live, preserving order.
func keepLive(ids []string, live map[string]manifestEntry) []string {
	kept := ids[:0]
	for _, id := range ids {
		if _, ok := live[id]; ok {
			kept = append(kept, id)
		}
	}
	return kept
}

// quarantine moves a failed artifact aside for postmortem instead of
// deleting evidence.
func (s *Store) quarantine(id string, cause error) {
	s.recovery.Quarantined++
	dst := filepath.Join(s.quarantineDir(), id+artifactExt)
	if err := s.fs.Rename(s.artifactPath(id), dst); err != nil {
		// The file may be unreadable or already gone; removal keeps it
		// out of serving either way.
		_ = s.fs.Remove(s.artifactPath(id))
	}
	s.log.Warn("store: artifact quarantined", "id", id, "cause", cause)
}

// writeManifest atomically replaces the manifest with one put line per
// live artifact. Caller must not hold other store files open for write.
func (s *Store) writeManifest() error {
	var buf strings.Builder
	for _, id := range s.order {
		line, err := json.Marshal(s.live[id])
		if err != nil {
			return fmt.Errorf("store: encode manifest: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return s.atomicWrite(s.manifestPath(), []byte(buf.String()))
}

// atomicWrite lands data at path with full crash safety: temp file in
// the same directory, write, fsync, rename over the target, fsync the
// directory.
func (s *Store) atomicWrite(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	if err := s.fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("store: sync dir for %s: %w", path, err)
	}
	return nil
}

// appendManifest journals one entry with its own fsync.
func (s *Store) appendManifest(ent manifestEntry) error {
	line, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	f, err := s.fs.OpenAppend(s.manifestPath())
	if err != nil {
		return fmt.Errorf("store: open manifest: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: append manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: fsync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close manifest: %w", err)
	}
	return nil
}

// Put durably stores an artifact: atomic data file first, then the
// manifest entry — a crash between the two leaves an orphan file that
// recovery reaps, never a manifest entry without data.
func (s *Store) Put(id, name string, data []byte) error {
	if err := s.atomicWrite(s.artifactPath(id), data); err != nil {
		return err
	}
	ent := manifestEntry{Op: "put", ID: id, Name: name, Size: len(data), SHA256: checksum(data)}
	if err := s.appendManifest(ent); err != nil {
		return err
	}
	s.mu.Lock()
	if _, seen := s.live[id]; !seen {
		s.order = append(s.order, id)
	}
	s.live[id] = ent
	s.seen[id] = struct{}{}
	s.mu.Unlock()
	return nil
}

// Delete durably removes an artifact: manifest tombstone first, then the
// data file — a crash between the two leaves an orphan that recovery
// reaps.
func (s *Store) Delete(id string) error {
	if err := s.appendManifest(manifestEntry{Op: "del", ID: id}); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.live, id)
	s.order = keepLive(s.order, s.live)
	s.mu.Unlock()
	if err := s.fs.Remove(s.artifactPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: remove %s: %w", id, err)
	}
	return nil
}

// Artifacts returns every live artifact with its data, in first-put
// order. Used once at boot to repopulate the serving map.
func (s *Store) Artifacts() ([]Artifact, error) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	names := make(map[string]string, len(ids))
	for _, id := range ids {
		names[id] = s.live[id].Name
	}
	s.mu.Unlock()
	arts := make([]Artifact, 0, len(ids))
	for _, id := range ids {
		data, err := s.fs.ReadFile(s.artifactPath(id))
		if err != nil {
			return nil, fmt.Errorf("store: read %s: %w", id, err)
		}
		arts = append(arts, Artifact{ID: id, Name: names[id], Data: data})
	}
	return arts, nil
}

// MaxSeq returns the highest numeric suffix among IDs ever journaled in
// the form prefix+digits ("a7" → 7 for prefix "a"), so a restarted
// server resumes ID allocation past everything recovered — deleted IDs
// included: an ID, once handed out, is never reissued to a different
// artifact. IDs in other shapes count 0.
func (s *Store) MaxSeq(prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for id := range s.seen {
		if n, ok := seq(id, prefix); ok && n > max {
			max = n
		}
	}
	return max
}

func seq(id, prefix string) (int, bool) {
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// QuarantinedFiles lists file names currently held in quarantine,
// sorted — test and postmortem telemetry.
func (s *Store) QuarantinedFiles() ([]string, error) {
	names, err := s.fs.ReadDir(s.quarantineDir())
	if err != nil {
		return nil, fmt.Errorf("store: list quarantine: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

func checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
