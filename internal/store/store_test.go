package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes nothing (the store holds no long-lived handles besides
// journals) and mounts the same directory again, as a restart would.
func reopen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "first", []byte("payload-1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a2", "second", []byte("payload-2")); err != nil {
		t.Fatalf("Put: %v", err)
	}

	s2 := reopen(t, dir)
	arts, err := s2.Artifacts()
	if err != nil {
		t.Fatalf("Artifacts: %v", err)
	}
	if len(arts) != 2 {
		t.Fatalf("recovered %d artifacts, want 2", len(arts))
	}
	if arts[0].ID != "a1" || arts[0].Name != "first" || string(arts[0].Data) != "payload-1" {
		t.Fatalf("a1 = %+v", arts[0])
	}
	if arts[1].ID != "a2" || string(arts[1].Data) != "payload-2" {
		t.Fatalf("a2 = %+v", arts[1])
	}
	if st := s2.Recovery(); st.Restored != 2 || st.Quarantined != 0 || st.Orphans != 0 || st.TornManifest != 0 {
		t.Fatalf("recovery = %+v, want 2 restored and nothing else", st)
	}
	if got := s2.MaxSeq("a"); got != 2 {
		t.Fatalf("MaxSeq = %d, want 2", got)
	}
}

func TestPutOverwriteAndDelete(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	for _, step := range []struct{ id, data string }{
		{"a1", "v1"}, {"a1", "v2"}, {"a2", "x"},
	} {
		if err := s.Put(step.id, step.id, []byte(step.data)); err != nil {
			t.Fatalf("Put %s: %v", step.id, err)
		}
	}
	if err := s.Delete("a2"); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	s2 := reopen(t, dir)
	arts, err := s2.Artifacts()
	if err != nil {
		t.Fatalf("Artifacts: %v", err)
	}
	if len(arts) != 1 || arts[0].ID != "a1" || string(arts[0].Data) != "v2" {
		t.Fatalf("after overwrite+delete got %+v, want only a1=v2", arts)
	}
	// The deleted ID's file is gone.
	if _, err := os.Stat(filepath.Join(dir, "artifacts", "a2.ehar")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("a2.ehar still present: %v", err)
	}
}

// TestRecoveryTruncatedFile covers the crash model "data file torn":
// the manifest promises N bytes, the file has fewer. The artifact must be
// quarantined, the healthy one still served.
func TestRecoveryTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "ok", []byte("intact-artifact")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a2", "torn", []byte("doomed-artifact")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, "artifacts", "a2.ehar")
	if err := os.WriteFile(path, []byte("doom"), 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := reopen(t, dir)
	st := s2.Recovery()
	if st.Restored != 1 || st.Quarantined != 1 {
		t.Fatalf("recovery = %+v, want 1 restored 1 quarantined", st)
	}
	arts, err := s2.Artifacts()
	if err != nil {
		t.Fatalf("Artifacts: %v", err)
	}
	if len(arts) != 1 || arts[0].ID != "a1" {
		t.Fatalf("served artifacts = %+v, want only a1", arts)
	}
	q, err := s2.QuarantinedFiles()
	if err != nil {
		t.Fatalf("QuarantinedFiles: %v", err)
	}
	if len(q) != 1 || q[0] != "a2.ehar" {
		t.Fatalf("quarantine = %v, want [a2.ehar]", q)
	}
}

// TestRecoveryBadMagic covers the crash model "file corrupt in place":
// a same-length rewrite flips the magic bytes, so only the checksum (and
// the strict-decode verify hook) can catch it — the healthy artifact is
// still served.
func TestRecoveryBadMagic(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "good", []byte("EHDAgood")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a2", "bad", []byte("EHDAbad!")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Flip the magic in place; same length, so only the checksum and the
	// verify hook can catch it.
	path := filepath.Join(dir, "artifacts", "a2.ehar")
	if err := os.WriteFile(path, []byte("XXXXbad!"), 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}

	verify := func(id string, data []byte) error {
		if !bytes.HasPrefix(data, []byte("EHDA")) {
			return fmt.Errorf("bad magic in %s", id)
		}
		return nil
	}
	s2 := reopen(t, dir, WithVerify(verify))
	st := s2.Recovery()
	if st.Restored != 1 || st.Quarantined != 1 {
		t.Fatalf("recovery = %+v, want 1 restored 1 quarantined", st)
	}
	arts, _ := s2.Artifacts()
	if len(arts) != 1 || arts[0].ID != "a1" {
		t.Fatalf("served artifacts = %+v, want only a1", arts)
	}
}

// TestRecoveryVerifyHook: checksum matches (corruption happened before
// the checksum was journaled — e.g. a bad upload), only strict decode
// catches it.
func TestRecoveryVerifyHook(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "undecodable", []byte("not-an-artifact")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s2 := reopen(t, dir, WithVerify(func(id string, data []byte) error {
		return errors.New("strict decode refused")
	}))
	if st := s2.Recovery(); st.Quarantined != 1 || st.Restored != 0 {
		t.Fatalf("recovery = %+v, want quarantined 1", st)
	}
}

// TestRecoveryTornManifest covers the crash model "append cut short":
// the manifest's final line is half-written. Entries before it survive,
// the torn tail is dropped and counted, and the file the torn entry
// described is reaped as an orphan.
func TestRecoveryTornManifest(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "ok", []byte("intact")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a2", "torn-entry", []byte("half-journaled")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Tear the final manifest line mid-JSON.
	mpath := filepath.Join(dir, "artifacts", "manifest.log")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("manifest has %d lines, want 2", len(lines))
	}
	torn := append(lines[0], '\n')
	torn = append(torn, lines[1][:len(lines[1])/2]...)
	if err := os.WriteFile(mpath, torn, 0o644); err != nil {
		t.Fatalf("tear manifest: %v", err)
	}

	s2 := reopen(t, dir)
	st := s2.Recovery()
	if st.TornManifest != 1 {
		t.Fatalf("recovery = %+v, want 1 torn manifest line", st)
	}
	if st.Restored != 1 || st.Orphans != 1 {
		t.Fatalf("recovery = %+v, want 1 restored + a2 reaped as orphan", st)
	}
	arts, _ := s2.Artifacts()
	if len(arts) != 1 || arts[0].ID != "a1" {
		t.Fatalf("served artifacts = %+v, want only a1", arts)
	}
	// The compacted manifest replays cleanly on a third boot.
	s3 := reopen(t, dir)
	if st := s3.Recovery(); st.TornManifest != 0 || st.Restored != 1 {
		t.Fatalf("third boot recovery = %+v, want clean", st)
	}
}

// TestRecoveryOrphanTemp: a crash mid-atomic-write leaves a .tmp file;
// recovery reaps it without touching live artifacts.
func TestRecoveryOrphanTemp(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	if err := s.Put("a1", "ok", []byte("fine")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	tmp := filepath.Join(dir, "artifacts", "a2.ehar.tmp")
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatalf("plant tmp: %v", err)
	}
	s2 := reopen(t, dir)
	if st := s2.Recovery(); st.Orphans != 1 || st.Restored != 1 {
		t.Fatalf("recovery = %+v, want 1 orphan reaped", st)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp survived recovery: %v", err)
	}
}

func TestJobJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	j, err := s.NewJobJournal("g1", []byte(`{"name":"grid"}`))
	if err != nil {
		t.Fatalf("NewJobJournal: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf(`{"point":%d}`, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	// Crash now: journal must replay header + 3 points.
	s2 := reopen(t, dir)
	unfinished, finished, err := s2.RecoverJobs()
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	if len(finished) != 0 || len(unfinished) != 1 {
		t.Fatalf("recovered %d finished %d unfinished, want 0/1", len(finished), len(unfinished))
	}
	u := unfinished[0]
	if u.ID != "g1" || string(u.Spec) != `{"name":"grid"}` || len(u.Lines) != 3 {
		t.Fatalf("unfinished = %+v", u)
	}
	if string(u.Lines[2]) != `{"point":2}` {
		t.Fatalf("line 2 = %s", u.Lines[2])
	}

	// Finish the job; later boots see only the final document.
	if err := j.Finalize([]byte(`{"final":true}`)); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	s3 := reopen(t, dir)
	unfinished, finished, err = s3.RecoverJobs()
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	if len(unfinished) != 0 || len(finished) != 1 {
		t.Fatalf("after finalize: %d/%d, want 0 unfinished 1 finished", len(unfinished), len(finished))
	}
	if finished[0].ID != "g1" || string(finished[0].Final) != `{"final":true}` {
		t.Fatalf("finished = %+v", finished[0])
	}
}

// TestJobJournalTornTail: a crash mid-append leaves an unterminated last
// line, which recovery drops — that point re-runs.
func TestJobJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	j, err := s.NewJobJournal("g1", []byte(`{"spec":1}`))
	if err != nil {
		t.Fatalf("NewJobJournal: %v", err)
	}
	if err := j.Append([]byte(`{"point":0}`)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Simulate the torn write directly on the file.
	path := filepath.Join(dir, "jobs", "g1.journal")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.WriteString(`{"point":1}`); err != nil { // no newline
		t.Fatalf("torn write: %v", err)
	}
	f.Close()

	s2 := reopen(t, dir)
	unfinished, _, err := s2.RecoverJobs()
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	if len(unfinished) != 1 || len(unfinished[0].Lines) != 1 {
		t.Fatalf("unfinished = %+v, want 1 job with 1 intact line", unfinished)
	}
}

// TestJobJournalFinalizeCrash: final document written, journal removal
// missed — the final document wins and the stray journal is retired.
func TestJobJournalFinalizeCrash(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	j, err := s.NewJobJournal("g1", []byte(`{"spec":1}`))
	if err != nil {
		t.Fatalf("NewJobJournal: %v", err)
	}
	_ = j
	// Plant the final document by hand, leaving the journal in place.
	if err := s.atomicWrite(filepath.Join(dir, "jobs", "g1.json"), []byte(`{"done":1}`)); err != nil {
		t.Fatalf("plant final: %v", err)
	}
	s2 := reopen(t, dir)
	unfinished, finished, err := s2.RecoverJobs()
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	if len(unfinished) != 0 || len(finished) != 1 {
		t.Fatalf("got %d/%d, want journal retired in favor of final", len(unfinished), len(finished))
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "g1.journal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray journal not retired: %v", err)
	}
}

func TestJobJournalAbort(t *testing.T) {
	dir := t.TempDir()
	s := reopen(t, dir)
	j, err := s.NewJobJournal("g1", []byte(`{"spec":1}`))
	if err != nil {
		t.Fatalf("NewJobJournal: %v", err)
	}
	if err := j.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	unfinished, finished, err := s.RecoverJobs()
	if err != nil {
		t.Fatalf("RecoverJobs: %v", err)
	}
	if len(unfinished) != 0 || len(finished) != 0 {
		t.Fatalf("aborted job resurfaced: %d/%d", len(unfinished), len(finished))
	}
}

func TestJournalRejectsNewlines(t *testing.T) {
	s := reopen(t, t.TempDir())
	if _, err := s.NewJobJournal("g1", []byte("two\nlines")); err == nil {
		t.Fatal("NewJobJournal accepted a multi-line spec")
	}
	j, err := s.NewJobJournal("g2", []byte(`{}`))
	if err != nil {
		t.Fatalf("NewJobJournal: %v", err)
	}
	if err := j.Append([]byte("a\nb")); err == nil {
		t.Fatal("Append accepted an embedded newline")
	}
}

func TestMaxSeqIgnoresForeignShapes(t *testing.T) {
	s := reopen(t, t.TempDir())
	for _, id := range []string{"a3", "a10", "b99", "axx"} {
		if err := s.Put(id, id, []byte(id)); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if got := s.MaxSeq("a"); got != 10 {
		t.Fatalf("MaxSeq(a) = %d, want 10", got)
	}
	if got := s.MaxSeq("g"); got != 0 {
		t.Fatalf("MaxSeq(g) = %d, want 0", got)
	}
}
