// Package mcu models the target microcontroller (TI MSP432 class) as the
// paper's evaluation does: computation cost is driven by FLOPs through
// fixed energy and latency coefficients, storage is bounded, and
// intermittent execution pays explicit FRAM checkpoint/restore costs.
//
// The paper reduces the MCU to exactly these proxies — 1.5 mJ per million
// FLOPs (§V-A) and FLOPs as the latency proxy (§V-D) — so this analytic
// model reproduces the paper's arithmetic rather than emulating the ISA.
package mcu

import "fmt"

// Device is the MCU cost model.
type Device struct {
	// Name of the device model.
	Name string
	// EnergyPerMFLOP is the active-compute energy in mJ per million MACs
	// (the paper's 1.5 mJ/MFLOP).
	EnergyPerMFLOP float64
	// MFLOPSPerSecond is compute throughput in millions of MACs per
	// second while powered. A 48 MHz MSP432 with the LEA MAC unit
	// sustains roughly 2 MMAC/s on conv workloads.
	MFLOPSPerSecond float64
	// WeightStorageBytes is the persistent storage budget for network
	// weights (the paper's "tens of KB" FRAM/flash budget).
	WeightStorageBytes int64
	// SRAMBytes bounds the largest live activation buffer.
	SRAMBytes int64
	// CheckpointEnergyMJ is the energy to checkpoint execution state to
	// FRAM before a power failure.
	CheckpointEnergyMJ float64
	// RestoreEnergyMJ is the energy to restore state after recharging.
	RestoreEnergyMJ float64
	// CheckpointSeconds and RestoreSeconds are the matching latencies.
	CheckpointSeconds float64
	RestoreSeconds    float64
	// IdleListenMW is the sleep current draw of the event-detection
	// front-end in mW (kept 0 by default: the paper attributes all
	// energy to inference).
	IdleListenMW float64
}

// MSP432 returns the paper's target device model.
func MSP432() *Device {
	return &Device{
		Name:               "MSP432",
		EnergyPerMFLOP:     1.5,
		MFLOPSPerSecond:    2.0,
		WeightStorageBytes: 64 * 1024,
		SRAMBytes:          64 * 1024,
		CheckpointEnergyMJ: 0.02,
		RestoreEnergyMJ:    0.02,
		CheckpointSeconds:  0.01,
		RestoreSeconds:     0.01,
	}
}

// MSP430FR5994 returns an MSP430-class device: slower core and LEA than
// the MSP432 but native-FRAM state, so checkpoints are cheaper, and a
// larger FRAM weight budget. The coefficients are analytic extrapolations
// from the MSP432 model (half the throughput, ~1.3× the energy per MAC,
// quarter-cost checkpoints), not measurements — the point is a
// plausible second fleet member, documented as such.
func MSP430FR5994() *Device {
	return &Device{
		Name:               "MSP430FR5994",
		EnergyPerMFLOP:     2.0,
		MFLOPSPerSecond:    1.0,
		WeightStorageBytes: 256 * 1024,
		SRAMBytes:          8 * 1024,
		CheckpointEnergyMJ: 0.005,
		RestoreEnergyMJ:    0.005,
		CheckpointSeconds:  0.004,
		RestoreSeconds:     0.004,
	}
}

// ApolloM4 returns an Ambiq-Apollo-class sub-threshold Cortex-M4 device:
// markedly lower energy per MAC and higher throughput than the MSP432,
// but SRAM-resident state makes power-failure checkpoints expensive.
// Like MSP430FR5994 these are analytic extrapolations for fleet sweeps.
func ApolloM4() *Device {
	return &Device{
		Name:               "ApolloM4",
		EnergyPerMFLOP:     0.5,
		MFLOPSPerSecond:    6.0,
		WeightStorageBytes: 512 * 1024,
		SRAMBytes:          384 * 1024,
		CheckpointEnergyMJ: 0.08,
		RestoreEnergyMJ:    0.08,
		CheckpointSeconds:  0.02,
		RestoreSeconds:     0.02,
	}
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	switch {
	case d.EnergyPerMFLOP <= 0:
		return fmt.Errorf("mcu: EnergyPerMFLOP must be positive, got %g", d.EnergyPerMFLOP)
	case d.MFLOPSPerSecond <= 0:
		return fmt.Errorf("mcu: MFLOPSPerSecond must be positive, got %g", d.MFLOPSPerSecond)
	case d.WeightStorageBytes <= 0:
		return fmt.Errorf("mcu: WeightStorageBytes must be positive, got %d", d.WeightStorageBytes)
	case d.CheckpointEnergyMJ < 0 || d.RestoreEnergyMJ < 0:
		return fmt.Errorf("mcu: negative checkpoint/restore energy")
	case d.CheckpointSeconds < 0 || d.RestoreSeconds < 0:
		return fmt.Errorf("mcu: negative checkpoint/restore latency")
	}
	return nil
}

// ComputeEnergyMJ returns the energy (mJ) to execute the given MAC count.
func (d *Device) ComputeEnergyMJ(flops int64) float64 {
	return float64(flops) / 1e6 * d.EnergyPerMFLOP
}

// ComputeSeconds returns the active compute time (s) for the MAC count.
func (d *Device) ComputeSeconds(flops int64) float64 {
	return float64(flops) / 1e6 / d.MFLOPSPerSecond
}

// FitsStorage reports whether a model of the given weight size fits the
// device's weight storage budget.
func (d *Device) FitsStorage(weightBytes int64) bool {
	return weightBytes <= d.WeightStorageBytes
}
