package mcu

import (
	"math"
	"testing"
)

func TestMSP432Defaults(t *testing.T) {
	d := MSP432()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.EnergyPerMFLOP != 1.5 {
		t.Fatalf("EnergyPerMFLOP = %v, paper uses 1.5 mJ/MFLOP", d.EnergyPerMFLOP)
	}
}

func TestComputeEnergyMatchesPaperConstant(t *testing.T) {
	d := MSP432()
	// The paper's full-precision exit energies: FLOPs × 1.5 mJ/MFLOP.
	cases := []struct {
		flops int64
		want  float64
	}{
		{445_200, 0.6678},
		{1_260_200, 1.8903},
		{1_620_200, 2.4303},
	}
	for _, c := range cases {
		if got := d.ComputeEnergyMJ(c.flops); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("energy(%d) = %v, want %v", c.flops, got, c.want)
		}
	}
}

func TestComputeSeconds(t *testing.T) {
	d := MSP432()
	if got := d.ComputeSeconds(2_000_000); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("2 MFLOPs at 2 MFLOP/s should take 1 s, got %v", got)
	}
}

func TestFitsStorage(t *testing.T) {
	d := MSP432()
	if !d.FitsStorage(16 * 1024) {
		t.Fatal("16 KB must fit")
	}
	if d.FitsStorage(600 * 1024) {
		t.Fatal("580+ KB must not fit")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := MSP432()
	bad.EnergyPerMFLOP = 0
	if bad.Validate() == nil {
		t.Fatal("zero energy accepted")
	}
	bad = MSP432()
	bad.MFLOPSPerSecond = -1
	if bad.Validate() == nil {
		t.Fatal("negative throughput accepted")
	}
	bad = MSP432()
	bad.CheckpointEnergyMJ = -1
	if bad.Validate() == nil {
		t.Fatal("negative checkpoint energy accepted")
	}
}
