// Package fleet simulates large populations of intermittently powered
// devices — 10⁴ to 10⁶ of them — as one first-class workload. Each
// simulated device runs the paper's full online loop (event-driven exit
// selection, incremental refinement, tabular Q-learning) against the
// intermittent engine, but where core.Runtime carries one device's state
// in a heap of small objects, the fleet engine keeps every device's RL
// policy state, RNG stream, and interval counters in packed per-
// population arenas and shards the devices across workers. The episode
// step loop is allocation-free in the steady state (`//ehlint:hotpath`),
// populations share one read-only compiled deployment (and, in
// empirical mode, one compiled inference plan), and a population's
// energy traces come from a small pool of seed-jittered variants rather
// than a trace per device.
//
// Determinism contract: every per-device stream (policy RNG, schedule,
// trace variant, churn) derives from (BaseSeed, global device index)
// through exper.DeriveSeed, devices are fully independent within an
// epoch, and snapshot aggregation reduces per-device accumulators in
// device-index order at epoch barriers — so fleet results are
// bit-identical at any worker count, and a run fast-forwarded to a
// later StartEpoch reproduces the uninterrupted run's snapshots and
// final document byte for byte (the property ehserved's crash-resume
// leans on).
package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/exper"
	"repro/internal/mcu"
	"repro/internal/plan"
	"repro/internal/qlearn"
)

// Fleet-wide defaults; population-level knobs default to the paper's §V
// values exactly as exper.GridSpec's axes do.
const (
	defaultEpochs        = 8
	defaultEvents        = 40
	defaultEventClasses  = 10
	defaultTraceVariants = 16
	defaultTraceSeconds  = 3600
	defaultTracePeakMW   = 0.032
	defaultSamples       = 128
	// confThreshold is core's static incremental-inference threshold.
	confThreshold = 0.65
	// maxDevices bounds a submitted fleet: the arena for a million
	// default-binned devices is ~3 GB, and anything past this is a spec
	// error, not a workload.
	maxDevices = 4_000_000
)

// Stream salts separating the fleet's seed-derived stream families from
// each other and from the grid engine's (which uses 0 and deploySalt).
const (
	saltDeploy uint64 = 0xf1ee7_0001
	saltTrace  uint64 = 0xf1ee7_0002
	saltDevice uint64 = 0xf1ee7_0003
	saltSched  uint64 = 0xf1ee7_0004
	saltChurn  uint64 = 0xf1ee7_0005
	saltData   uint64 = 0xf1ee7_0006
)

// ChurnKind selects a deterministic churn/failure-injection rule.
type ChurnKind string

// Supported churn kinds.
const (
	// ChurnLeave takes each device offline for any given epoch with
	// probability Prob (intermittent connectivity / duty-cycled nodes).
	ChurnLeave ChurnKind = "leave"
	// ChurnJoin selects a Prob fraction of devices to join the fleet
	// late, at a seed-derived epoch — before it they are offline.
	ChurnJoin ChurnKind = "join"
	// ChurnDegrade selects a Prob fraction of devices whose capacitor
	// loses Rate of its capacity per epoch, floored at MinFrac (aging
	// cells).
	ChurnDegrade ChurnKind = "degrade"
)

// ChurnSpec is one declarative churn rule. Whether a rule touches a
// given (device, epoch) is a pure function of the fleet seed, the rule's
// index, and the device's global index — the internal/chaos seed-stream
// pattern — so churn replays identically across worker counts and
// checkpoint/resume boundaries.
type ChurnSpec struct {
	Kind ChurnKind `json:"kind"`
	// Prob is the selection probability in [0, 1] (per epoch for leave,
	// per device for join/degrade).
	Prob float64 `json:"prob"`
	// Rate is the per-epoch capacity fraction lost (degrade only).
	Rate float64 `json:"rate,omitempty"`
	// MinFrac floors the degraded capacity fraction (default 0.2).
	MinFrac float64 `json:"minFrac,omitempty"`
}

// PopulationSpec describes one homogeneous device population: how many
// devices, which MCU/capacitor/deployment they run, which trace family
// feeds them (each device gets a seed-jittered variant), their exit
// policy and RL hyperparameters, and any churn rules.
type PopulationSpec struct {
	Name string `json:"name,omitempty"`
	// Count is the number of simulated devices.
	Count int `json:"count"`
	// Device names an MCU axis value (see exper.DeviceNames; default
	// "MSP432").
	Device string `json:"device,omitempty"`
	// Policy names a compression policy, registered deployment, or — via
	// a caller resolver — an uploaded "artifact:<id>" (default
	// "nonuniform"). All devices of the population share the one
	// resulting read-only deployment.
	Policy string `json:"policy,omitempty"`
	// Trace is the population's trace family (zero value: a 3600 s
	// 0.032 mW solar trace). Each device draws one of TraceVariants
	// seed-jittered instances of it.
	Trace exper.TraceSpec `json:"trace,omitempty"`
	// TraceVariants sizes the per-population trace pool (default 16,
	// clamped to Count).
	TraceVariants int `json:"traceVariants,omitempty"`
	// Storage is the capacitor template (zero value: the paper's 6 mJ
	// capacitor).
	Storage exper.StorageSpec `json:"storage,omitempty"`
	// Exit selects the runtime exit policy (zero value: Q-learning).
	Exit exper.ExitSpec `json:"exit,omitempty"`
	// Alpha/Gamma override the Q-learning rates (defaults 0.2 / 0.9).
	Alpha float64 `json:"alpha,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	// Epsilon fixes the exploration rate; 0 selects the annealed
	// schedule (exploration decaying over the fleet's epochs).
	Epsilon float64 `json:"epsilon,omitempty"`
	// EnergyBins/PowerBins/ConfBins discretize the Q-state (defaults
	// 10/6/8). Fewer bins shrink the per-device arena — the knob that
	// makes 10⁶-device fleets fit in memory.
	EnergyBins int `json:"energyBins,omitempty"`
	PowerBins  int `json:"powerBins,omitempty"`
	ConfBins   int `json:"confBins,omitempty"`
	// Empirical switches the population from the surrogate accuracy
	// model to real inference on the population's shared compiled plan
	// (one plan.Plan, read-only across all shards; each worker keeps its
	// own execution state). Orders of magnitude slower per event — meant
	// for small validation populations, not the million-device path.
	Empirical bool `json:"empirical,omitempty"`
	// Churn lists the population's churn/failure-injection rules.
	Churn []ChurnSpec `json:"churn,omitempty"`
}

// Spec is the fully-declarative, JSON-serializable description of a
// fleet run — the fleet twin of exper.GridSpec, submitted as-is to
// ehserved's POST /v1/fleets. Empty fields default to runnable values,
// so the minimal spec is `{"populations":[{"count":1000}]}`.
type Spec struct {
	Name     string `json:"name,omitempty"`
	BaseSeed uint64 `json:"baseSeed,omitempty"`
	// Epochs is the number of learning epochs; each device replays its
	// event schedule over its trace once per epoch (default 8).
	Epochs int `json:"epochs,omitempty"`
	// SnapshotEvery emits an aggregate snapshot every N epochs (default
	// 1; the final epoch always snapshots).
	SnapshotEvery int `json:"snapshotEvery,omitempty"`
	// Events is the number of schedule events per device-epoch (default
	// 40 — smaller than a grid point's 500 because the fleet multiplies
	// it by the device count).
	Events int `json:"events,omitempty"`
	// EventClasses is the label alphabet size (default 10).
	EventClasses int `json:"eventClasses,omitempty"`
	// Samples sizes the shared SynthCIFAR test set empirical
	// populations draw events from (default 128; ignored when every
	// population is surrogate).
	Samples int `json:"samples,omitempty"`

	Populations []PopulationSpec `json:"populations"`
}

// Fleet resolves the spec against the process-wide axis registries and
// returns the compiled, runnable fleet.
func (s *Spec) Fleet() (*Fleet, error) { return s.Resolve(nil) }

// Resolve is Fleet with a caller-supplied policy resolver consulted
// before the registries — how ehserved maps "artifact:<id>" policy
// names onto its uploaded artifacts, exactly as GridSpec.GridResolved
// does for grids.
func (s *Spec) Resolve(lookup func(name string) (exper.PolicySpec, bool)) (*Fleet, error) {
	if len(s.Populations) == 0 {
		return nil, fmt.Errorf("fleet: spec %q has no populations", s.Name)
	}
	f := &Fleet{
		Name:          s.Name,
		BaseSeed:      s.BaseSeed,
		Epochs:        s.Epochs,
		SnapshotEvery: s.SnapshotEvery,
		Events:        s.Events,
		EventClasses:  s.EventClasses,
	}
	if f.Name == "" {
		f.Name = "fleet"
	}
	if f.Epochs == 0 {
		f.Epochs = defaultEpochs
	}
	if f.SnapshotEvery == 0 {
		f.SnapshotEvery = 1
	}
	if f.Events == 0 {
		f.Events = defaultEvents
	}
	if f.EventClasses == 0 {
		f.EventClasses = defaultEventClasses
	}
	switch {
	case f.Epochs < 0:
		return nil, fmt.Errorf("fleet: spec %q has negative epochs", f.Name)
	case f.SnapshotEvery < 0:
		return nil, fmt.Errorf("fleet: spec %q has negative snapshotEvery", f.Name)
	case f.Events < 0:
		return nil, fmt.Errorf("fleet: spec %q has negative events", f.Name)
	case f.EventClasses < 0:
		return nil, fmt.Errorf("fleet: spec %q has negative eventClasses", f.Name)
	}

	start := 0
	empirical := false
	for pi := range s.Populations {
		p, err := resolvePopulation(f, &s.Populations[pi], pi, start, lookup)
		if err != nil {
			return nil, err
		}
		f.Pops = append(f.Pops, p)
		start += p.Count
		if start > maxDevices {
			return nil, fmt.Errorf("fleet: spec %q asks for more than %d devices", f.Name, maxDevices)
		}
		empirical = empirical || p.Empirical
	}
	f.Devices = start

	if empirical {
		n := s.Samples
		if n == 0 {
			n = defaultSamples
		}
		if n < 1 {
			return nil, fmt.Errorf("fleet: spec %q has non-positive samples", f.Name)
		}
		f.TestSet = dataset.NewGenerator(dataset.SynthConfig{
			Seed: exper.DeriveSeed(f.BaseSeed, 0, saltData),
		}).Generate(n)
	}
	return f, nil
}

// resolvePopulation compiles one population: axis names resolve to the
// device model and the shared deployment, the trace-variant pool is
// materialized from seed-jittered instances of the trace family, and
// the per-exit energy tables are precomputed for the step loop.
func resolvePopulation(f *Fleet, ps *PopulationSpec, pi, start int, lookup func(string) (exper.PolicySpec, bool)) (*Population, error) {
	name := ps.Name
	if name == "" {
		name = fmt.Sprintf("pop%d", pi)
	}
	if ps.Count < 1 {
		return nil, fmt.Errorf("fleet: population %q has count %d", name, ps.Count)
	}

	devName := ps.Device
	if devName == "" {
		devName = "MSP432"
	}
	devSpec, err := exper.LookupDevice(devName)
	if err != nil {
		return nil, fmt.Errorf("fleet: population %q: %w", name, err)
	}
	device := devSpec.Build()

	polName := ps.Policy
	if polName == "" {
		polName = "nonuniform"
	}
	var polSpec exper.PolicySpec
	resolved := false
	if lookup != nil {
		if p, ok := lookup(polName); ok {
			polSpec, resolved = p, true
		}
	}
	if !resolved {
		if polSpec, err = exper.LookupPolicy(polName); err != nil {
			return nil, fmt.Errorf("fleet: population %q: %w", name, err)
		}
	}
	var deployed *core.Deployed
	if polSpec.Deployed != nil {
		deployed = polSpec.Deployed()
	} else {
		// A compression policy deploys once per population; the seed
		// depends only on (BaseSeed, population index), so every device
		// of the population shares one bit-identical deployment.
		deployed, err = core.BuildDeployed(polSpec.Build(), exper.DeriveSeed(f.BaseSeed, uint64(pi), saltDeploy))
		if err != nil {
			return nil, fmt.Errorf("fleet: population %q: %w", name, err)
		}
	}
	if err := deployed.CheckFits(device); err != nil {
		return nil, fmt.Errorf("fleet: population %q: %w", name, err)
	}

	storage := ps.Storage.Storage
	if storage == (energy.Storage{}) {
		storage = exper.Capacitor(6).Storage
	}
	if err := storage.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: population %q: %w", name, err)
	}

	p := &Population{
		Name:       name,
		Index:      pi,
		Count:      ps.Count,
		Start:      start,
		Device:     device,
		Deployed:   deployed,
		Storage:    storage,
		Mode:       ps.Exit.Mode,
		Alpha:      defaultOr(ps.Alpha, 0.2),
		Gamma:      defaultOr(ps.Gamma, 0.9),
		Epsilon:    ps.Epsilon,
		EnergyBins: defaultIntOr(ps.EnergyBins, 10),
		PowerBins:  defaultIntOr(ps.PowerBins, 6),
		ConfBins:   defaultIntOr(ps.ConfBins, 8),
		Empirical:  ps.Empirical,
		Churn:      ps.Churn,
	}
	switch p.Mode {
	case core.PolicyQLearning, core.PolicyStaticLUT:
	default:
		return nil, fmt.Errorf("fleet: population %q has unknown exit mode %d", name, int(p.Mode))
	}
	for ri, c := range ps.Churn {
		switch c.Kind {
		case ChurnLeave, ChurnJoin, ChurnDegrade:
		default:
			return nil, fmt.Errorf("fleet: population %q churn rule %d has unknown kind %q", name, ri, c.Kind)
		}
		if c.Prob < 0 || c.Prob > 1 {
			return nil, fmt.Errorf("fleet: population %q churn rule %d has probability %g outside [0,1]", name, ri, c.Prob)
		}
		if c.Rate < 0 {
			return nil, fmt.Errorf("fleet: population %q churn rule %d has negative rate", name, ri)
		}
	}

	// Per-exit energy tables, computed once per population (the step
	// loop's replacements for engine.EnergyFor calls).
	m := len(deployed.ExitFLOPs)
	p.Costs = make([]float64, m)
	for i, fl := range deployed.ExitFLOPs {
		p.Costs[i] = device.ComputeEnergyMJ(fl)
	}
	p.MargCosts = make([]float64, m)
	for i := 0; i+1 < m; i++ {
		p.MargCosts[i] = device.ComputeEnergyMJ(deployed.Marginal[i][i+1])
	}
	p.Static = qlearn.NewStaticLUT(p.Costs, confThreshold)
	p.exitStride = p.EnergyBins * p.PowerBins * m
	p.incrStride = p.ConfBins * p.EnergyBins * 2

	if p.Empirical {
		pl, err := deployed.FloatPlan()
		if err != nil {
			return nil, fmt.Errorf("fleet: population %q cannot compile its plan for empirical mode: %w", name, err)
		}
		p.Plan = pl
	}

	// The trace-variant pool: a trace per device would be gigabytes at
	// fleet scale, so each device draws one of a small pool of
	// seed-jittered instances of the population's trace family.
	ts := ps.Trace
	if ts == (exper.TraceSpec{}) {
		ts = exper.SolarTrace(defaultTraceSeconds, defaultTracePeakMW)
	}
	variants := ps.TraceVariants
	if variants == 0 {
		variants = defaultTraceVariants
	}
	if variants < 1 {
		return nil, fmt.Errorf("fleet: population %q has non-positive traceVariants", name)
	}
	if variants > p.Count {
		variants = p.Count
	}
	p.Traces = make([]*energy.Trace, variants)
	p.TracePeaks = make([]float64, variants)
	for v := 0; v < variants; v++ {
		tr, err := ts.Build(exper.DeriveSeed(f.BaseSeed, uint64(pi)<<20|uint64(v), saltTrace))
		if err != nil {
			return nil, fmt.Errorf("fleet: population %q trace variant %d: %w", name, v, err)
		}
		if tr.Duration() == 0 {
			return nil, fmt.Errorf("fleet: population %q trace %q is empty", name, ts.Name)
		}
		p.Traces[v] = tr
		p.TracePeaks[v] = tracePeak(tr)
	}
	return p, nil
}

func defaultOr(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func defaultIntOr(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

// tracePeak returns the trace's maximum power for Q-state binning.
func tracePeak(t *energy.Trace) float64 {
	var peak float64
	for _, p := range t.Power {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// Fleet is a compiled, runnable fleet: shared read-only deployments and
// trace pools per population, plus the resolved run shape. Build one
// with Spec.Resolve; run it with Engine.Run.
type Fleet struct {
	Name          string
	BaseSeed      uint64
	Epochs        int
	SnapshotEvery int
	Events        int
	EventClasses  int
	// Devices is the total simulated device count across populations.
	Devices int
	Pops    []*Population
	// TestSet is the shared SynthCIFAR set empirical populations draw
	// samples from (nil when every population is surrogate).
	TestSet *dataset.Set
}

// SnapshotCount returns how many snapshots a full run emits.
func (f *Fleet) SnapshotCount() int {
	if f.Epochs == 0 {
		return 0
	}
	n := f.Epochs / f.SnapshotEvery
	if f.Epochs%f.SnapshotEvery != 0 {
		n++ // the final epoch always snapshots
	}
	return n
}

// snapshotAt reports whether completing epoch ep emits a snapshot.
func (f *Fleet) snapshotAt(ep int) bool {
	return (ep+1)%f.SnapshotEvery == 0 || ep == f.Epochs-1
}

// Population is one compiled population: everything the sharded episode
// loop reads is precomputed here and shared read-only across workers.
type Population struct {
	Name  string
	Index int
	Count int
	// Start is the population's first global device index; global index
	// identity is what every per-device seed stream derives from.
	Start    int
	Device   *mcu.Device
	Deployed *core.Deployed
	// Plan is the shared compiled inference plan for empirical
	// populations (nil in surrogate mode). It is read-only; each worker
	// holds its own plan.Exec/plan.State.
	Plan    *plan.Plan
	Storage energy.Storage
	Mode    core.PolicyMode
	Static  *qlearn.StaticLUT

	Alpha, Gamma, Epsilon           float64
	EnergyBins, PowerBins, ConfBins int
	Empirical                       bool
	Churn                           []ChurnSpec

	Traces     []*energy.Trace
	TracePeaks []float64
	// Costs[i] is the energy (mJ) of an inference to exit i on Device;
	// MargCosts[i] the cost of resuming from exit i to i+1.
	Costs     []float64
	MargCosts []float64

	exitStride, incrStride int
}
