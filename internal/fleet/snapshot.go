package fleet

import (
	"bytes"
	"encoding/json"
)

// PopSnapshot aggregates one population over one snapshot interval (the
// epochs since the previous snapshot), plus the cumulative learning-
// curve fields. Every value is reduced from per-device accumulators in
// device-index order, so the same fleet produces byte-identical
// snapshots at any worker count.
type PopSnapshot struct {
	Name string `json:"name"`
	// Devices is the population size; Offline counts device-epochs the
	// churn rules kept out of this interval.
	Devices int   `json:"devices"`
	Offline int64 `json:"offline,omitempty"`
	// Events/Processed/Correct/Missed count schedule events over the
	// interval (offline device-epochs contribute no events).
	Events    int64 `json:"events"`
	Processed int64 `json:"processed"`
	Correct   int64 `json:"correct"`
	Missed    int64 `json:"missed"`
	// ExitHist[i] counts processed events whose final exit was i.
	ExitHist []int64 `json:"exitHist"`
	// EnergyMJ is inference energy spent; HarvestedMJ the energy the
	// fleet's capacitors took in over the interval.
	EnergyMJ    float64 `json:"energyMJ"`
	HarvestedMJ float64 `json:"harvestedMJ"`
	// AccuracyAll is correct/events (missed events count as wrong —
	// the paper's fleet-level quality metric); AccuracyProcessed is
	// correct/processed; BrownoutRate is missed/events.
	AccuracyAll       float64 `json:"accuracyAll"`
	AccuracyProcessed float64 `json:"accuracyProcessed"`
	BrownoutRate      float64 `json:"brownoutRate"`
	// IEpmJ is the interval's energy-normalized quality: correct
	// inferences per harvested millijoule.
	IEpmJ float64 `json:"iepmJ"`
	// CumEvents/CumCorrect/CumAccuracy accumulate from epoch 0 — the
	// per-population learning curve across snapshots.
	CumEvents   int64   `json:"cumEvents"`
	CumCorrect  int64   `json:"cumCorrect"`
	CumAccuracy float64 `json:"cumAccuracy"`
}

// rates fills the derived ratio fields from the count fields.
func (p *PopSnapshot) rates() {
	if p.Events > 0 {
		p.AccuracyAll = float64(p.Correct) / float64(p.Events)
		p.BrownoutRate = float64(p.Missed) / float64(p.Events)
	}
	if p.Processed > 0 {
		p.AccuracyProcessed = float64(p.Correct) / float64(p.Processed)
	}
	if p.HarvestedMJ > 0 {
		p.IEpmJ = float64(p.Correct) / p.HarvestedMJ
	}
	if p.CumEvents > 0 {
		p.CumAccuracy = float64(p.CumCorrect) / float64(p.CumEvents)
	}
}

// accumulate folds an interval snapshot into a running total.
func (p *PopSnapshot) accumulate(s *PopSnapshot) {
	p.Offline += s.Offline
	p.Events += s.Events
	p.Processed += s.Processed
	p.Correct += s.Correct
	p.Missed += s.Missed
	for i, v := range s.ExitHist {
		p.ExitHist[i] += v
	}
	p.EnergyMJ += s.EnergyMJ
	p.HarvestedMJ += s.HarvestedMJ
	p.CumEvents = s.CumEvents
	p.CumCorrect = s.CumCorrect
}

// Snapshot is one periodic aggregate of the whole fleet, emitted at
// epoch barriers (every SnapshotEvery epochs and at the final epoch).
// It is the unit ehserved streams as NDJSON and journals for resume.
type Snapshot struct {
	// Epoch is the last completed epoch this snapshot covers.
	Epoch int `json:"epoch"`
	// Devices is the fleet's total device count.
	Devices     int           `json:"devices"`
	Populations []PopSnapshot `json:"populations"`
}

// Result is a completed (or cancelled-partway) fleet run.
type Result struct {
	Name    string `json:"name"`
	Devices int    `json:"devices"`
	Epochs  int    `json:"epochs"`
	// Events is the per-device-epoch schedule length.
	Events int `json:"events"`
	// Workers records how the run was sharded. It is excluded from the
	// serialized document: worker count must never influence (or appear
	// to influence) fleet results.
	Workers int `json:"-"`
	// Snapshots holds every snapshot of the run, including ones before
	// a resumed run's StartEpoch — the full document is identical to an
	// uninterrupted run's.
	Snapshots []Snapshot `json:"snapshots"`
	// Totals aggregates each population over all epochs.
	Totals []PopSnapshot `json:"totals"`
}

// JSON renders the result as a stable, deterministic document (no
// wall-clock or host-dependent fields) — the byte-identity anchor the
// determinism tests and the crash-resume smoke compare.
func (r *Result) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
