package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/exper"
)

func testSpec() *Spec {
	return &Spec{
		Name:     "t",
		BaseSeed: 7,
		Epochs:   4,
		Events:   12,
		Populations: []PopulationSpec{
			{Name: "solar-q", Count: 60, TraceVariants: 4},
			{Name: "static", Count: 40, Exit: exper.ExitSpec{Mode: 1}, TraceVariants: 4},
		},
	}
}

func runFleet(t *testing.T, s *Spec, workers, startEpoch int) (*Result, []Snapshot) {
	t.Helper()
	f, err := s.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	var emitted []Snapshot
	e := Engine{Workers: workers, StartEpoch: startEpoch, OnSnapshot: func(s Snapshot) {
		emitted = append(emitted, s)
	}}
	res, err := e.Run(context.Background(), f)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, emitted
}

func TestSpecDefaults(t *testing.T) {
	s := &Spec{Populations: []PopulationSpec{{Count: 3}}}
	f, err := s.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if f.Epochs != defaultEpochs || f.Events != defaultEvents || f.EventClasses != defaultEventClasses {
		t.Fatalf("defaults not applied: %+v", f)
	}
	p := f.Pops[0]
	if p.Device == nil || p.Deployed == nil {
		t.Fatal("default device/policy not resolved")
	}
	if p.Alpha != 0.2 || p.Gamma != 0.9 || p.Epsilon != 0 {
		t.Fatalf("default hyperparameters wrong: α=%g γ=%g ε=%g", p.Alpha, p.Gamma, p.Epsilon)
	}
	if len(p.Traces) != 3 { // variants clamp to count
		t.Fatalf("trace pool size %d, want 3", len(p.Traces))
	}
	if p.Storage.CapacityMJ != 6 {
		t.Fatalf("default capacitor %g mJ, want 6", p.Storage.CapacityMJ)
	}
	if got := f.SnapshotCount(); got != defaultEpochs {
		t.Fatalf("SnapshotCount = %d, want %d", got, defaultEpochs)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Populations: []PopulationSpec{{Count: 0}}},
		{Populations: []PopulationSpec{{Count: 1, Device: "nope"}}},
		{Populations: []PopulationSpec{{Count: 1, Policy: "nope"}}},
		{Populations: []PopulationSpec{{Count: 1, Churn: []ChurnSpec{{Kind: "meteor", Prob: 0.1}}}}},
		{Populations: []PopulationSpec{{Count: 1, Churn: []ChurnSpec{{Kind: ChurnLeave, Prob: 1.5}}}}},
		{Epochs: -1, Populations: []PopulationSpec{{Count: 1}}},
	}
	for i := range bad {
		if _, err := bad[i].Fleet(); err == nil {
			t.Errorf("spec %d: expected an error", i)
		}
	}
}

// TestWorkerCountInvariance is the determinism tentpole: the same fleet
// must produce byte-identical documents sharded over 1 and 4 workers.
func TestWorkerCountInvariance(t *testing.T) {
	r1, _ := runFleet(t, testSpec(), 1, 0)
	r4, _ := runFleet(t, testSpec(), 4, 0)
	j1, err := r1.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	j4, err := r4.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatalf("results differ across worker counts:\n1 worker: %s\n4 workers: %s", j1, j4)
	}
	if len(r1.Snapshots) != 4 {
		t.Fatalf("got %d snapshots, want 4", len(r1.Snapshots))
	}
}

// TestResumeBitIdentical mirrors exper's resume contract: a run fast-
// forwarded to StartEpoch k emits exactly the uninterrupted run's
// snapshots from k on, and its final document is byte-identical.
func TestResumeBitIdentical(t *testing.T) {
	full, fullEmitted := runFleet(t, testSpec(), 2, 0)
	if len(fullEmitted) != len(full.Snapshots) {
		t.Fatalf("full run emitted %d of %d snapshots", len(fullEmitted), len(full.Snapshots))
	}
	resumed, emitted := runFleet(t, testSpec(), 3, 2)
	if len(emitted) != 2 {
		t.Fatalf("resumed run emitted %d snapshots, want 2", len(emitted))
	}
	for i, s := range emitted {
		want, _ := json.Marshal(full.Snapshots[2+i])
		got, _ := json.Marshal(s)
		if !bytes.Equal(want, got) {
			t.Fatalf("resumed snapshot %d differs:\nwant %s\ngot  %s", i, want, got)
		}
	}
	jf, _ := full.JSON()
	jr, _ := resumed.JSON()
	if !bytes.Equal(jf, jr) {
		t.Fatal("resumed final document differs from uninterrupted run")
	}
}

func TestFleetProgresses(t *testing.T) {
	res, _ := runFleet(t, testSpec(), 0, 0)
	if len(res.Totals) != 2 {
		t.Fatalf("got %d totals", len(res.Totals))
	}
	for _, tot := range res.Totals {
		if tot.Events == 0 || tot.Processed == 0 {
			t.Fatalf("population %q processed nothing: %+v", tot.Name, tot)
		}
		if tot.AccuracyProcessed <= 0 || tot.AccuracyProcessed > 1 {
			t.Fatalf("population %q accuracy %g out of range", tot.Name, tot.AccuracyProcessed)
		}
		if tot.HarvestedMJ <= 0 || tot.IEpmJ <= 0 {
			t.Fatalf("population %q has no harvest accounting: %+v", tot.Name, tot)
		}
		var hist int64
		for _, v := range tot.ExitHist {
			hist += v
		}
		if hist != tot.Processed {
			t.Fatalf("population %q exit histogram sums to %d, processed %d", tot.Name, hist, tot.Processed)
		}
	}
	// The learning curve fields accumulate monotonically.
	var prev int64
	for _, s := range res.Snapshots {
		if s.Populations[0].CumEvents < prev {
			t.Fatal("cumulative events decreased")
		}
		prev = s.Populations[0].CumEvents
	}
}

func TestChurnDeterministicAndEffective(t *testing.T) {
	s := testSpec()
	s.Populations[0].Churn = []ChurnSpec{
		{Kind: ChurnLeave, Prob: 0.5},
		{Kind: ChurnDegrade, Prob: 0.5, Rate: 0.3},
	}
	s.Populations[1].Churn = []ChurnSpec{{Kind: ChurnJoin, Prob: 0.9}}
	r1, _ := runFleet(t, s, 1, 0)
	r4, _ := runFleet(t, s, 4, 0)
	j1, _ := r1.JSON()
	j4, _ := r4.JSON()
	if !bytes.Equal(j1, j4) {
		t.Fatal("churned fleet differs across worker counts")
	}
	if r1.Totals[0].Offline == 0 {
		t.Fatal("leave churn rule took no device-epochs offline")
	}
	if r1.Totals[1].Offline == 0 {
		t.Fatal("join churn rule took no device-epochs offline")
	}
	// Churn must change outcomes relative to the unchurned fleet.
	base, _ := runFleet(t, testSpec(), 1, 0)
	jb, _ := base.JSON()
	if bytes.Equal(j1, jb) {
		t.Fatal("churn rules had no effect")
	}
}

// TestEmpiricalPopulation runs a small population on the shared compiled
// plan and checks the worker-count invariance holds there too.
func TestEmpiricalPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical population is slow")
	}
	s := &Spec{
		Name:     "emp",
		BaseSeed: 3,
		Epochs:   2,
		Events:   6,
		Samples:  32,
		Populations: []PopulationSpec{
			{Name: "emp", Count: 8, Empirical: true, TraceVariants: 2},
		},
	}
	f, err := s.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if f.TestSet == nil || f.Pops[0].Plan == nil {
		t.Fatal("empirical population did not compile a shared plan")
	}
	r1, _ := runFleet(t, s, 1, 0)
	r2, _ := runFleet(t, s, 2, 0)
	j1, _ := r1.JSON()
	j2, _ := r2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("empirical fleet differs across worker counts")
	}
	if r1.Totals[0].Processed == 0 {
		t.Fatal("empirical population processed nothing")
	}
}

func TestCancelReturnsPartial(t *testing.T) {
	s := testSpec()
	s.Epochs = 50
	f, err := s.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	e := Engine{Workers: 2, OnSnapshot: func(Snapshot) {
		n++
		if n == 2 {
			cancel()
		}
	}}
	res, err := e.Run(ctx, f)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if len(res.Snapshots) < 2 || len(res.Snapshots) >= 50 {
		t.Fatalf("partial result has %d snapshots", len(res.Snapshots))
	}
}

func TestSpecRoundTripsJSON(t *testing.T) {
	s := testSpec()
	s.Populations[0].Churn = []ChurnSpec{{Kind: ChurnDegrade, Prob: 0.2, Rate: 0.1, MinFrac: 0.5}}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	r1, _ := runFleet(t, s, 2, 0)
	r2, _ := runFleet(t, &back, 2, 0)
	j1, _ := r1.JSON()
	j2, _ := r2.JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("spec does not survive a JSON round trip")
	}
}
