package fleet

import "repro/internal/exper"

// Churn is deterministic failure injection in the internal/chaos mold:
// whether a rule touches a (device, epoch) pair is a pure function of
// the fleet seed, the rule's identity, and the device's global index —
// never of worker scheduling or wall clock. That keeps churned fleets
// bit-identical across worker counts and checkpoint/resume boundaries,
// and lets resumed runs replay the exact device availability history of
// the run they continue.

// churnUnit maps a (seed, a, b) triple to a uniform value in [0, 1),
// using the same 53-bit mantissa construction as tensor.RNG.Float64 so
// probabilities are unbiased.
func churnUnit(seed, a, b uint64) float64 {
	return float64(exper.DeriveSeed(seed, a, b)>>11) / float64(1<<53)
}

// churnRuleSeed identifies one rule of one population within the fleet's
// churn stream family.
func churnRuleSeed(baseSeed uint64, popIndex, ruleIndex int) uint64 {
	return exper.DeriveSeed(baseSeed, uint64(popIndex)<<16|uint64(ruleIndex), saltChurn)
}

// churnAt evaluates every churn rule of the population for one device
// and epoch: whether the device is offline this epoch, and the factor
// its capacitor capacity is degraded by (1 when untouched; the minimum
// across degrade rules, floored by each rule's MinFrac).
//
//ehlint:hotpath
func churnAt(baseSeed uint64, p *Population, gidx uint64, epoch, epochs int) (offline bool, capFactor float64) {
	capFactor = 1
	for ri := range p.Churn {
		c := &p.Churn[ri]
		seed := churnRuleSeed(baseSeed, p.Index, ri)
		switch c.Kind {
		case ChurnLeave:
			// Epoch-keyed draw: each epoch the device independently sits
			// out with probability Prob. epoch+1 keeps the stream off the
			// join/degrade rules' selection draw at b=0.
			if churnUnit(seed, gidx, uint64(epoch)+1) < c.Prob {
				offline = true
			}
		case ChurnJoin:
			// Device-keyed selection; joiners are offline until their
			// seed-derived join epoch.
			if churnUnit(seed, gidx, 0) < c.Prob {
				join := int(exper.DeriveSeed(seed, gidx, 1) % uint64(epochs))
				if epoch < join {
					offline = true
				}
			}
		case ChurnDegrade:
			if churnUnit(seed, gidx, 0) < c.Prob {
				f := 1 - c.Rate*float64(epoch)
				min := c.MinFrac
				if min == 0 {
					min = 0.2
				}
				if f < min {
					f = min
				}
				if f < capFactor {
					capFactor = f
				}
			}
		}
	}
	return offline, capFactor
}
