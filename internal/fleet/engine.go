package fleet

import (
	"context"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/exper"
	"repro/internal/intermittent"
	"repro/internal/plan"
	"repro/internal/qlearn"
	"repro/internal/tensor"
)

// Runtime constants mirroring core.RuntimeConfig's defaults — the fleet
// engine runs the same §IV decision loop, so the same shaping applies.
const (
	powerWindow       = 60
	incrEnergyPenalty = 0.6
	// chunkDevices is the shard granularity: small enough to balance
	// load across workers, large enough that per-chunk setup (table
	// headers, scratch growth) amortizes away.
	chunkDevices = 1024
)

// Engine shards a fleet's devices across workers and runs them through
// the learning epochs. Devices are independent within an epoch and all
// cross-device aggregation happens at epoch barriers in device-index
// order, so Run's output is a pure function of the fleet — bit-identical
// at any worker count.
type Engine struct {
	// Workers is the shard worker count (0 = GOMAXPROCS-style default).
	Workers int
	// StartEpoch suppresses OnSnapshot for epochs before it: a resumed
	// run fast-forwards deterministically through the epochs its journal
	// already holds and emits only the remainder. The returned Result
	// still contains every snapshot, so the final document is identical
	// to an uninterrupted run's.
	StartEpoch int
	// OnSnapshot, when non-nil, observes each emitted snapshot in epoch
	// order (ehserved streams and journals these). It is called from
	// Run's goroutine between epochs.
	OnSnapshot func(Snapshot)
}

// Run executes the fleet and returns its result. It is a pure function
// of f (plus Engine knobs that do not affect values): arenas are built
// fresh each call, so the same fleet can be re-run or resumed at will.
// Cancelling ctx returns the snapshots completed so far with ctx.Err().
func (e *Engine) Run(ctx context.Context, f *Fleet) (*Result, error) {
	res := &Result{
		Name:    f.Name,
		Devices: f.Devices,
		Epochs:  f.Epochs,
		Events:  f.Events,
		Workers: e.Workers,
	}
	if f.Epochs == 0 || f.Devices == 0 {
		return res, nil
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > f.Devices {
		workers = f.Devices
	}

	arenas := make([]*arena, len(f.Pops))
	for i, p := range f.Pops {
		arenas[i] = newArena(f, p, workers)
	}

	// The shard pool: persistent workers drain chunk jobs; a WaitGroup
	// per epoch is the barrier snapshots reduce behind.
	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	var stop atomic.Bool
	var workerWG sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			w := worker{f: f}
			for jb := range jobs {
				if !stop.Load() {
					w.runChunk(jb)
				}
				wg.Done()
			}
		}()
	}
	defer func() {
		close(jobs)
		workerWG.Wait()
	}()

	// Per-population running totals and learning-curve accumulators.
	totals := make([]PopSnapshot, len(f.Pops))
	for i, p := range f.Pops {
		totals[i] = PopSnapshot{
			Name:     p.Name,
			Devices:  p.Count,
			ExitHist: make([]int64, len(p.Costs)),
		}
	}
	cumEvents := make([]int64, len(f.Pops))
	cumCorrect := make([]int64, len(f.Pops))

	for ep := 0; ep < f.Epochs; ep++ {
		if err := ctx.Err(); err != nil {
			stop.Store(true)
			res.Totals = finishTotals(totals)
			return res, err
		}
		for pi, p := range f.Pops {
			for lo := 0; lo < p.Count; lo += chunkDevices {
				hi := lo + chunkDevices
				if hi > p.Count {
					hi = p.Count
				}
				wg.Add(1)
				jobs <- job{p: p, a: arenas[pi], lo: lo, hi: hi, epoch: ep}
			}
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			stop.Store(true)
			res.Totals = finishTotals(totals)
			return res, err
		}

		if !f.snapshotAt(ep) {
			continue
		}
		snap := Snapshot{Epoch: ep, Devices: f.Devices, Populations: make([]PopSnapshot, len(f.Pops))}
		for pi, p := range f.Pops {
			ps := arenas[pi].reduce(p)
			cumEvents[pi] += ps.Events
			cumCorrect[pi] += ps.Correct
			ps.CumEvents = cumEvents[pi]
			ps.CumCorrect = cumCorrect[pi]
			ps.rates()
			totals[pi].accumulate(&ps)
			snap.Populations[pi] = ps
			arenas[pi].zeroIntervals()
		}
		res.Snapshots = append(res.Snapshots, snap)
		if ep >= e.StartEpoch && e.OnSnapshot != nil {
			e.OnSnapshot(snap)
		}
	}
	res.Totals = finishTotals(totals)
	return res, nil
}

// finishTotals fills the derived ratio fields of the running totals.
func finishTotals(totals []PopSnapshot) []PopSnapshot {
	for i := range totals {
		totals[i].rates()
	}
	return totals
}

// popEpsilon is the population's exploration rate for an epoch: fixed
// when the spec pins it, otherwise annealed from 0.27 down to 0.02 over
// the fleet's epochs (the fleet-scale analogue of the grid engine's
// warmup-then-evaluate split).
func popEpsilon(p *Population, epoch, epochs int) float64 {
	if p.Epsilon > 0 {
		return p.Epsilon
	}
	return 0.25*(1-float64(epoch)/float64(epochs)) + 0.02
}

// job is one shard: a contiguous run of a population's devices for one
// epoch.
type job struct {
	p      *Population
	a      *arena
	lo, hi int
	epoch  int
}

// arena is a population's packed per-device state: Q-values, RNG
// streams, and interval accumulators, all in flat slices indexed by the
// population-local device index. Nothing here is allocated per episode.
type arena struct {
	// exitQ/incrQ hold each device's two Q-tables back to back
	// (exitStride/incrStride values per device); workers Bind table
	// headers onto sub-slices.
	exitQ []float64
	incrQ []float64
	// rngs are the per-device policy/surrogate streams (the same stream
	// core.NewRuntime seeds per runtime, carried across epochs).
	rngs []tensor.RNG
	// variants[i] is the device's trace-pool index.
	variants []int32
	// Interval accumulators, zeroed after each snapshot reduce.
	events    []uint32
	processed []uint32
	correct   []uint32
	offline   []uint32
	exits     []uint32 // count × numExits final-exit histogram
	energyMJ  []float64
	harvestMJ []float64
}

// newArena packs a population's device state and initializes each
// device exactly as core.NewRuntime would: the policy RNG seeded from
// the device's identity, exit-Q cells filled with small uninformed
// values from that stream, incremental Q zeroed. Initialization is
// sharded too (it is pure per-device work), so million-device fleets
// spin up on all cores.
func newArena(f *Fleet, p *Population, workers int) *arena {
	m := len(p.Costs)
	a := &arena{
		exitQ:     make([]float64, p.Count*p.exitStride),
		incrQ:     make([]float64, p.Count*p.incrStride),
		rngs:      make([]tensor.RNG, p.Count),
		variants:  make([]int32, p.Count),
		events:    make([]uint32, p.Count),
		processed: make([]uint32, p.Count),
		correct:   make([]uint32, p.Count),
		offline:   make([]uint32, p.Count),
		exits:     make([]uint32, p.Count*m),
		energyMJ:  make([]float64, p.Count),
		harvestMJ: make([]float64, p.Count),
	}
	var wg sync.WaitGroup
	chunk := (p.Count + workers - 1) / workers
	for lo := 0; lo < p.Count; lo += chunk {
		hi := lo + chunk
		if hi > p.Count {
			hi = p.Count
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			variants := uint64(len(p.Traces))
			for di := lo; di < hi; di++ {
				gidx := uint64(p.Start + di)
				a.variants[di] = int32(exper.DeriveSeed(f.BaseSeed, gidx, saltTrace) % variants)
				rng := &a.rngs[di]
				rng.Reseed(exper.DeriveSeed(f.BaseSeed, gidx, saltDevice))
				q := a.exitQ[di*p.exitStride : (di+1)*p.exitStride]
				for i := range q {
					q[i] = 0.05 * rng.Float64()
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return a
}

// reduce sums the interval accumulators into a PopSnapshot, walking
// devices in index order so float accumulation is order-stable.
func (a *arena) reduce(p *Population) PopSnapshot {
	m := len(p.Costs)
	ps := PopSnapshot{
		Name:     p.Name,
		Devices:  p.Count,
		ExitHist: make([]int64, m),
	}
	for di := 0; di < p.Count; di++ {
		ps.Events += int64(a.events[di])
		ps.Processed += int64(a.processed[di])
		ps.Correct += int64(a.correct[di])
		ps.Offline += int64(a.offline[di])
		for x := 0; x < m; x++ {
			ps.ExitHist[x] += int64(a.exits[di*m+x])
		}
		ps.EnergyMJ += a.energyMJ[di]
		ps.HarvestedMJ += a.harvestMJ[di]
	}
	ps.Missed = ps.Events - ps.Processed
	return ps
}

// zeroIntervals clears the interval accumulators after a snapshot.
func (a *arena) zeroIntervals() {
	clear(a.events)
	clear(a.processed)
	clear(a.correct)
	clear(a.offline)
	clear(a.exits)
	clear(a.energyMJ)
	clear(a.harvestMJ)
}

// worker owns everything one shard goroutine reuses across devices:
// the intermittent engine, the storage copy, the Q-table headers the
// arena slices bind onto, and the schedule scratch. All values — a
// worker is a single stack-ish block that touches the heap only through
// the arenas and the shared read-only population state.
type worker struct {
	f     *Fleet
	eng   intermittent.Engine
	store energy.Storage

	exitTab   qlearn.Table
	incrTab   qlearn.Table
	exitAgent qlearn.ExitAgent
	incrAgent qlearn.IncrementalAgent

	// schedRNG regenerates a device's event schedule into the scratch
	// below; a schedule per device would dwarf the Q arenas.
	schedRNG tensor.RNG
	times    []int
	samples  []int

	// execs/states are per-population compiled-plan cursors for
	// empirical populations (lazily built; plan itself is shared).
	execs  []*plan.Exec
	states []*plan.State
}

// pendingUpdate is the exit-agent transition awaiting its successor
// state, exactly core.Runtime's pending value.
type pendingUpdate struct {
	state  int
	action int
	reward float64
}

// evCtx carries one event's surrogate draw or empirical sample.
type evCtx struct {
	u       float64
	label   int
	sample  *dataset.Sample
	pi      int
	started bool
}

// runChunk runs one shard: per-population setup (table headers, agent
// views, scratch sizing), then the device loop with churn applied.
func (w *worker) runChunk(jb job) {
	p := jb.p
	f := w.f
	m := len(p.Costs)
	eps := popEpsilon(p, jb.epoch, f.Epochs)
	w.exitTab = qlearn.Table{
		NumStates: p.EnergyBins * p.PowerBins, NumActions: m,
		Alpha: p.Alpha, Gamma: p.Gamma, Epsilon: eps,
	}
	w.incrTab = qlearn.Table{
		NumStates: p.ConfBins * p.EnergyBins, NumActions: 2,
		Alpha: p.Alpha, Gamma: p.Gamma, Epsilon: eps,
	}
	w.exitAgent = qlearn.ExitAgent{
		Table: &w.exitTab, EnergyBins: p.EnergyBins, PowerBins: p.PowerBins,
		MaxEnergyMJ: p.Storage.CapacityMJ,
	}
	w.incrAgent = qlearn.IncrementalAgent{
		Table: &w.incrTab, ConfidenceBins: p.ConfBins, EnergyBins: p.EnergyBins,
		MaxEnergyMJ: p.Storage.CapacityMJ,
	}
	if cap(w.times) < f.Events {
		w.times = make([]int, 0, f.Events)
	}
	if p.Empirical {
		if w.execs == nil {
			w.execs = make([]*plan.Exec, len(f.Pops))
			w.states = make([]*plan.State, len(f.Pops))
		}
		if w.execs[p.Index] == nil {
			w.execs[p.Index] = p.Plan.NewExec()
			w.states[p.Index] = p.Plan.NewState()
		}
		if cap(w.samples) < f.Events {
			w.samples = make([]int, 0, f.Events)
		}
	}

	for di := jb.lo; di < jb.hi; di++ {
		gidx := uint64(p.Start + di)
		offline, capFactor := churnAt(f.BaseSeed, p, gidx, jb.epoch, f.Epochs)
		if offline {
			jb.a.offline[di]++
			continue
		}
		w.runEpisode(p, jb.a, di, gidx, capFactor)
	}
}

// runEpisode replays one device's event schedule over its trace for one
// epoch — the fleet port of core.Runtime.Run + handleEvent, decision for
// decision, with the device's Q-state bound in from the arena. This is
// the fleet's innermost loop: it must not allocate.
//
//ehlint:hotpath
func (w *worker) runEpisode(p *Population, a *arena, di int, gidx uint64, capFactor float64) {
	f := w.f

	// Fresh storage copy per episode (as core copies per Run), with any
	// churn-rule capacitor degradation applied. Binning stays on the
	// base capacity so a degraded device's Q-state indices keep meaning.
	w.store = p.Storage
	if capFactor < 1 {
		c := p.Storage.CapacityMJ * capFactor
		if c < p.Storage.TurnOnMJ {
			c = p.Storage.TurnOnMJ
		}
		w.store.CapacityMJ = c
	}
	v := int(a.variants[di])
	tr := p.Traces[v]
	w.eng.Reset(p.Device, &w.store, tr)
	w.exitAgent.MaxPowerMW = p.TracePeaks[v]

	w.exitTab.Bind(a.exitQ[di*p.exitStride : (di+1)*p.exitStride])
	w.incrTab.Bind(a.incrQ[di*p.incrStride : (di+1)*p.incrStride])
	rng := &a.rngs[di]

	// Regenerate the device's schedule (identical every epoch — the
	// learning episodes replay one schedule, as the paper's Fig. 7a
	// runs do) into worker scratch.
	dur := tr.Duration()
	w.schedRNG.Reseed(exper.DeriveSeed(f.BaseSeed, gidx, saltSched))
	w.times = w.times[:0]
	for i := 0; i < f.Events; i++ {
		w.times = append(w.times, w.schedRNG.Intn(dur))
	}
	slices.Sort(w.times)
	if p.Empirical {
		w.samples = w.samples[:0]
		n := f.TestSet.Len()
		for i := 0; i < f.Events; i++ {
			w.samples = append(w.samples, w.schedRNG.Intn(n))
		}
	}

	var pend pendingUpdate
	hasPending := false
	var nEvents, nProcessed, nCorrect uint32
	var energyMJ float64
	m := len(p.Costs)
	deployed := p.Deployed
	qmode := p.Mode == core.PolicyQLearning

	for idx := 0; idx < f.Events; idx++ {
		evT := float64(w.times[idx])
		deadline := float64(dur)
		if idx+1 < f.Events {
			deadline = float64(w.times[idx+1])
		}
		nEvents++
		if w.eng.Now() > evT {
			// Still busy with the previous event: missed.
			continue
		}
		w.eng.AdvanceTo(evT)

		c := evCtx{u: rng.Float64(), label: idx % f.EventClasses, pi: p.Index}
		if p.Empirical {
			c.sample = &f.TestSet.Samples[w.samples[idx]]
			c.label = c.sample.Label
		}

		obsEnergy := w.store.Available()
		obsPower := w.eng.RecentPower(powerWindow)
		state := w.exitAgent.State(obsEnergy, obsPower)
		if hasPending {
			w.exitTab.Update(pend.state, pend.action, pend.reward, state)
			hasPending = false
		}

		// Decision 1: select the exit (§IV).
		var chosen int
		if qmode {
			chosen = w.exitTab.Select(state, rng)
		} else {
			chosen = p.Static.SelectExit(obsEnergy)
			if chosen < 0 {
				continue // static policy has no wait action: missed
			}
		}
		exit := chosen
		for exit > 0 && w.store.Available() < p.Costs[exit] {
			exit--
		}
		if w.store.Available() < p.Costs[exit] {
			if !w.eng.WaitForEnergy(p.Costs[exit], deadline) {
				if qmode {
					pend = pendingUpdate{state: state, action: chosen}
					hasPending = true
				}
				continue
			}
		}
		res, ok := w.eng.RunAtomic(deployed.ExitFLOPs[exit])
		if !ok {
			if qmode {
				pend = pendingUpdate{state: state, action: chosen}
				hasPending = true
			}
			continue
		}
		correct, conf := w.correctAt(p, &c, exit, rng)
		nProcessed++
		energyMJ += res.EnergyMJ
		if qmode {
			pend = pendingUpdate{state: state, action: chosen, reward: deployed.ExitAccs[exit]}
			hasPending = true
		}

		// Decision 2: incremental inference toward deeper exits.
		for exit < m-1 {
			margCost := p.MargCosts[exit]
			incrState := w.incrAgent.State(conf, w.store.Available())
			var goOn bool
			if qmode {
				goOn = w.incrTab.Select(incrState, rng) == qlearn.ActionContinue
			} else {
				goOn = p.Static.Continue(conf, margCost, w.store.Available())
			}
			continuePenalty := incrEnergyPenalty * margCost / p.Storage.CapacityMJ
			if !goOn {
				if qmode {
					w.incrTab.UpdateTerminal(incrState, qlearn.ActionStop, boolReward(correct))
				}
				break
			}
			if w.store.Available() < margCost {
				if !w.eng.WaitForEnergy(margCost, deadline) {
					if qmode {
						w.incrTab.UpdateTerminal(incrState, qlearn.ActionContinue, boolReward(correct)-continuePenalty)
					}
					break
				}
			}
			res, ok := w.eng.RunAtomic(deployed.Marginal[exit][exit+1])
			if !ok {
				break
			}
			exit++
			correct, conf = w.correctAt(p, &c, exit, rng)
			energyMJ += res.EnergyMJ
			if qmode {
				nextState := w.incrAgent.State(conf, w.store.Available())
				w.incrTab.Update(incrState, qlearn.ActionContinue, boolReward(correct)-continuePenalty, nextState)
			}
		}
		if correct {
			nCorrect++
		}
		a.exits[di*m+exit]++
	}
	// Episode boundary: flush the final pending exit update and drain
	// the rest of the trace so harvest accounting covers the full
	// duration.
	if hasPending {
		w.exitTab.UpdateTerminal(pend.state, pend.action, pend.reward)
	}
	w.eng.AdvanceTo(float64(dur))

	a.events[di] += nEvents
	a.processed[di] += nProcessed
	a.correct[di] += nCorrect
	a.energyMJ[di] += energyMJ
	a.harvestMJ[di] += w.eng.Stats().HarvestedMJ
}

// correctAt mirrors core.Runtime.correctAt: empirical populations run
// the shared compiled plan (InferTo once, Resume for deeper exits);
// surrogate populations draw correctness from the per-exit accuracies
// via the event's difficulty u, with confidence shaped by the margin.
//
//ehlint:hotpath
func (w *worker) correctAt(p *Population, c *evCtx, exit int, rng *tensor.RNG) (bool, float64) {
	if p.Empirical && c.sample != nil {
		exec, st := w.execs[c.pi], w.states[c.pi]
		if !c.started {
			exec.InferTo(st, c.sample.Image, exit)
			c.started = true
		} else if exit > st.Exit {
			exec.Resume(st, exit)
		}
		return st.Predicted() == c.label, st.Confidence()
	}
	acc := p.Deployed.ExitAccs[exit]
	correct := c.u < acc
	var conf float64
	if correct {
		conf = 0.55 + 0.45*(acc-c.u)/math.Max(acc, 1e-9)
	} else {
		conf = 0.55 - 0.35*(c.u-acc)/math.Max(1-acc, 1e-9)
	}
	conf += 0.05 * rng.NormFloat64()
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	return correct, conf
}

// boolReward maps a correctness bit to the paper's 0/1 reward.
func boolReward(c bool) float64 {
	if c {
		return 1
	}
	return 0
}
