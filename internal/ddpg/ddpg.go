// Package ddpg implements Deep Deterministic Policy Gradient (Lillicrap
// et al., 2015) on the in-repo nn substrate: deterministic actor,
// Q-critic, target networks with Polyak averaging, a uniform replay
// buffer, and Ornstein–Uhlenbeck exploration noise. The compression
// search (§III-B) runs two of these agents — one emitting layer pruning
// rates, one emitting weight/activation bitwidths — over the layer-wise
// observation of Eq. 9.
package ddpg

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config sizes an agent.
type Config struct {
	ObsDim    int
	ActionDim int
	// Hidden sizes of actor and critic MLPs (default {64, 48}).
	Hidden []int
	// ActorLR/CriticLR are Adam step sizes (defaults 1e-3 / 1e-2 scaled
	// for the short episodes of the compression search).
	ActorLR  float64
	CriticLR float64
	// Gamma is the discount (default 1: episodes are short layer walks).
	Gamma float64
	// Tau is the Polyak averaging rate for target networks (default
	// 0.01).
	Tau float64
	// BufferSize is the replay capacity in transitions (default 2000).
	BufferSize int
	// BatchSize for updates (default 64).
	BatchSize int
	// NoiseSigma is the OU noise scale (default 0.35); NoiseDecay
	// multiplies it each episode (default 0.99).
	NoiseSigma float64
	NoiseDecay float64
	Seed       uint64
}

func (c *Config) fillDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 48}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-3
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-2
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.BufferSize == 0 {
		c.BufferSize = 2000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.35
	}
	if c.NoiseDecay == 0 {
		c.NoiseDecay = 0.99
	}
}

// Transition is one replay entry.
type Transition struct {
	Obs      []float32
	Action   []float32
	Reward   float64
	NextObs  []float32
	Terminal bool
}

// Agent is one DDPG learner with deterministic policy µ(o) ∈ [0,1]^A.
type Agent struct {
	cfg Config

	actor        *nn.Sequential
	critic       *nn.Sequential
	actorTarget  *nn.Sequential
	criticTarget *nn.Sequential

	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	buffer []Transition
	bufAt  int
	full   bool

	noise []float64 // OU state
	sigma float64

	rng *tensor.RNG
}

// New builds a DDPG agent.
func New(cfg Config) (*Agent, error) {
	cfg.fillDefaults()
	if cfg.ObsDim <= 0 || cfg.ActionDim <= 0 {
		return nil, fmt.Errorf("ddpg: need positive obs/action dims, got %d/%d", cfg.ObsDim, cfg.ActionDim)
	}
	rng := tensor.NewRNG(cfg.Seed + 0xdd96)

	actorSizes := append(append([]int{cfg.ObsDim}, cfg.Hidden...), cfg.ActionDim)
	criticSizes := append(append([]int{cfg.ObsDim + cfg.ActionDim}, cfg.Hidden...), 1)

	a := &Agent{
		cfg:          cfg,
		actor:        nn.MLP("actor", actorSizes),
		critic:       nn.MLP("critic", criticSizes),
		actorTarget:  nn.MLP("actorT", actorSizes),
		criticTarget: nn.MLP("criticT", criticSizes),
		buffer:       make([]Transition, 0, cfg.BufferSize),
		noise:        make([]float64, cfg.ActionDim),
		sigma:        cfg.NoiseSigma,
		rng:          rng,
	}
	nn.InitFanIn(a.actor, rng, 3e-3)
	nn.InitFanIn(a.critic, rng, 3e-3)
	copyParams(a.actorTarget, a.actor)
	copyParams(a.criticTarget, a.critic)
	a.actorOpt = nn.NewAdam(a.actor.Params(), cfg.ActorLR)
	a.criticOpt = nn.NewAdam(a.critic.Params(), cfg.CriticLR)
	return a, nil
}

func copyParams(dst, src *nn.Sequential) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].Value.Data, sp[i].Value.Data)
	}
}

// sigmoid squashes actor outputs into (0, 1) — the continuous action
// space of §III-B.
func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// forwardActor computes µ(obs) for a batch [N, ObsDim] with the given
// network; output is squashed to (0, 1).
func forwardActor(net *nn.Sequential, obs *tensor.Tensor, train bool) *tensor.Tensor {
	out := net.Forward(obs, train)
	sq := out.Clone()
	for i, v := range sq.Data {
		sq.Data[i] = sigmoid(v)
	}
	return sq
}

// Act returns the exploration action for an observation: µ(o) plus OU
// noise, clamped to [0, 1].
func (a *Agent) Act(obs []float32, explore bool) []float32 {
	x := tensor.FromSlice(append([]float32(nil), obs...), 1, a.cfg.ObsDim)
	out := forwardActor(a.actor, x, false)
	act := make([]float32, a.cfg.ActionDim)
	for i := range act {
		v := float64(out.Data[i])
		if explore {
			// Ornstein–Uhlenbeck: dx = θ(µ−x)dt + σ dW, θ=0.15, µ=0.
			a.noise[i] += 0.15*(0-a.noise[i]) + a.sigma*a.rng.NormFloat64()
			v += a.noise[i]
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		act[i] = float32(v)
	}
	return act
}

// EndEpisode decays exploration noise and resets the OU state.
func (a *Agent) EndEpisode() {
	a.sigma *= a.cfg.NoiseDecay
	for i := range a.noise {
		a.noise[i] = 0
	}
}

// Remember appends a transition to the replay buffer.
func (a *Agent) Remember(t Transition) {
	if len(a.buffer) < a.cfg.BufferSize {
		a.buffer = append(a.buffer, t)
		return
	}
	a.full = true
	a.buffer[a.bufAt] = t
	a.bufAt = (a.bufAt + 1) % a.cfg.BufferSize
}

// BufferLen returns the number of stored transitions.
func (a *Agent) BufferLen() int { return len(a.buffer) }

// Update performs one critic and one actor gradient step from a replay
// minibatch, then Polyak-averages the targets. It is a no-op until the
// buffer holds a full batch.
func (a *Agent) Update() {
	n := a.cfg.BatchSize
	if len(a.buffer) < n {
		return
	}
	obsDim, actDim := a.cfg.ObsDim, a.cfg.ActionDim

	obs := tensor.New(n, obsDim)
	act := tensor.New(n, actDim)
	nextObs := tensor.New(n, obsDim)
	rewards := make([]float64, n)
	terminal := make([]bool, n)
	for i := 0; i < n; i++ {
		t := a.buffer[a.rng.Intn(len(a.buffer))]
		copy(obs.Data[i*obsDim:(i+1)*obsDim], t.Obs)
		copy(act.Data[i*actDim:(i+1)*actDim], t.Action)
		copy(nextObs.Data[i*obsDim:(i+1)*obsDim], t.NextObs)
		rewards[i] = t.Reward
		terminal[i] = t.Terminal
	}

	// Critic targets: y = r + γ Q'(o', µ'(o')) (Eq. 13).
	nextAct := forwardActor(a.actorTarget, nextObs, false)
	nextQ := a.criticTarget.Forward(concat(nextObs, nextAct), false)
	targets := make([]float32, n)
	for i := 0; i < n; i++ {
		y := rewards[i]
		if !terminal[i] {
			y += a.cfg.Gamma * float64(nextQ.Data[i])
		}
		targets[i] = float32(y)
	}

	// Critic step: minimize MSE(Q(o,a), y) (Eq. 14).
	a.criticOpt.ZeroGrad()
	q := a.critic.Forward(concat(obs, act), true)
	grad := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		grad.Data[i] = 2 * (q.Data[i] - targets[i]) / float32(n)
	}
	a.critic.Backward(grad)
	a.criticOpt.Step()

	// Actor step: ascend ∇_a Q(o, µ(o)) ∇µ (Eq. 15).
	a.actorOpt.ZeroGrad()
	actorOut := a.actor.Forward(obs, true)
	// Squash with sigmoid, tracking the local derivative for backprop.
	squashed := actorOut.Clone()
	dSquash := make([]float32, squashed.Len())
	for i, v := range squashed.Data {
		s := sigmoid(v)
		squashed.Data[i] = s
		dSquash[i] = s * (1 - s)
	}
	qIn := concat(obs, squashed)
	_ = a.critic.Forward(qIn, true)
	dQ := tensor.New(n, 1)
	for i := range dQ.Data {
		dQ.Data[i] = -1 / float32(n) // maximize Q
	}
	dIn := a.critic.Backward(dQ)
	// Route the action part of the critic's input gradient through the
	// sigmoid into the actor. The critic's own params also accumulated
	// gradients here; they are discarded by not stepping criticOpt.
	dAct := tensor.New(n, actDim)
	for i := 0; i < n; i++ {
		for j := 0; j < actDim; j++ {
			dAct.Data[i*actDim+j] = dIn.Data[i*(obsDim+actDim)+obsDim+j] * dSquash[i*actDim+j]
		}
	}
	// Clear critic gradients polluted by the actor pass.
	for _, p := range a.critic.Params() {
		p.ZeroGrad()
	}
	a.actor.Backward(dAct)
	a.actorOpt.Step()

	a.polyak(a.actorTarget, a.actor)
	a.polyak(a.criticTarget, a.critic)
}

func (a *Agent) polyak(target, src *nn.Sequential) {
	tau := float32(a.cfg.Tau)
	tp, sp := target.Params(), src.Params()
	for i := range tp {
		for j := range tp[i].Value.Data {
			tp[i].Value.Data[j] = (1-tau)*tp[i].Value.Data[j] + tau*sp[i].Value.Data[j]
		}
	}
}

func concat(a, b *tensor.Tensor) *tensor.Tensor {
	n := a.Dim(0)
	da, db := a.Dim(1), b.Dim(1)
	out := tensor.New(n, da+db)
	for i := 0; i < n; i++ {
		copy(out.Data[i*(da+db):], a.Data[i*da:(i+1)*da])
		copy(out.Data[i*(da+db)+da:], b.Data[i*db:(i+1)*db])
	}
	return out
}
