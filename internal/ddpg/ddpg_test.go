package ddpg

import (
	"testing"
)

func TestNewRejectsBadDims(t *testing.T) {
	if _, err := New(Config{ObsDim: 0, ActionDim: 1}); err == nil {
		t.Fatal("zero obs dim accepted")
	}
}

func TestActBounds(t *testing.T) {
	a, err := New(Config{ObsDim: 3, ActionDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := []float32{0.5, 0.1, 0.9}
	for i := 0; i < 50; i++ {
		act := a.Act(obs, true)
		if len(act) != 2 {
			t.Fatalf("action dim %d", len(act))
		}
		for _, v := range act {
			if v < 0 || v > 1 {
				t.Fatalf("action %v outside [0,1]", v)
			}
		}
	}
}

func TestActDeterministicWithoutExploration(t *testing.T) {
	a, _ := New(Config{ObsDim: 2, ActionDim: 1, Seed: 2})
	obs := []float32{0.3, 0.7}
	a1 := a.Act(obs, false)
	a2 := a.Act(obs, false)
	if a1[0] != a2[0] {
		t.Fatal("greedy policy must be deterministic")
	}
}

func TestReplayBufferWrapsAround(t *testing.T) {
	a, _ := New(Config{ObsDim: 1, ActionDim: 1, BufferSize: 8, Seed: 3})
	for i := 0; i < 20; i++ {
		a.Remember(Transition{
			Obs: []float32{0}, Action: []float32{0}, NextObs: []float32{0},
		})
	}
	if a.BufferLen() != 8 {
		t.Fatalf("buffer length %d, want capacity 8", a.BufferLen())
	}
}

func TestUpdateNoopUntilBatchAvailable(t *testing.T) {
	a, _ := New(Config{ObsDim: 1, ActionDim: 1, BatchSize: 16, Seed: 4})
	a.Remember(Transition{Obs: []float32{0}, Action: []float32{0}, NextObs: []float32{0}})
	a.Update() // must not panic with a near-empty buffer
}

func TestNoiseDecay(t *testing.T) {
	a, _ := New(Config{ObsDim: 1, ActionDim: 1, NoiseSigma: 0.5, NoiseDecay: 0.5, Seed: 5})
	a.EndEpisode()
	a.EndEpisode()
	if a.sigma > 0.13 {
		t.Fatalf("noise did not decay: %v", a.sigma)
	}
}

// TestLearnsBanditTarget trains DDPG on a stateless continuous bandit:
// reward = −(a − 0.8)². The greedy action should move toward 0.8.
func TestLearnsBanditTarget(t *testing.T) {
	a, err := New(Config{
		ObsDim:     2,
		ActionDim:  1,
		Hidden:     []int{24},
		BatchSize:  32,
		BufferSize: 500,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := []float32{0.5, 0.5}
	const target = 0.8
	before := a.Act(obs, false)[0]
	for ep := 0; ep < 400; ep++ {
		act := a.Act(obs, true)
		d := float64(act[0]) - target
		r := -d * d
		a.Remember(Transition{Obs: obs, Action: act, Reward: r, NextObs: obs, Terminal: true})
		a.Update()
		if ep%20 == 19 {
			a.EndEpisode()
		}
	}
	after := a.Act(obs, false)[0]
	errBefore := abs(float64(before) - target)
	errAfter := abs(float64(after) - target)
	if errAfter > errBefore && errAfter > 0.2 {
		t.Fatalf("no learning: action %v → %v (target %v)", before, after, target)
	}
	if errAfter > 0.3 {
		t.Fatalf("greedy action %v too far from target %v", after, target)
	}
}

// TestLearnsObsDependentPolicy: the optimal action equals the observation
// — requires the actor to actually use its input.
func TestLearnsObsDependentPolicy(t *testing.T) {
	a, err := New(Config{
		ObsDim:     1,
		ActionDim:  1,
		Hidden:     []int{24},
		BatchSize:  32,
		BufferSize: 1000,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRNG(8)
	for ep := 0; ep < 1500; ep++ {
		o := float32(0.2 + 0.6*rng.next())
		obs := []float32{o}
		act := a.Act(obs, true)
		d := float64(act[0] - o)
		a.Remember(Transition{Obs: obs, Action: act, Reward: -d * d, NextObs: obs, Terminal: true})
		a.Update()
		if ep%25 == 24 {
			a.EndEpisode()
		}
	}
	var worst float64
	for _, o := range []float32{0.25, 0.5, 0.75} {
		act := a.Act([]float32{o}, false)
		if d := abs(float64(act[0] - o)); d > worst {
			worst = d
		}
	}
	if worst > 0.3 {
		t.Fatalf("policy not observation-dependent enough: worst error %v", worst)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// minimal deterministic rng for test inputs.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }
func (r *testRNG) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}
