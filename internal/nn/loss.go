package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Softmax converts logits [N, classes] into probabilities row-wise with the
// usual max-shift for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: Softmax expects [N, classes], got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		dst := out.Data[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of a probability row vector.
// The paper uses entropy at an exit as the (inverse) confidence measure:
// low entropy ⇒ confident result.
func Entropy(probs []float32) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= float64(p) * math.Log(float64(p))
		}
	}
	return h
}

// NormalizedEntropy returns entropy scaled into [0, 1] by dividing by
// log(classes), so thresholds are architecture-independent.
func NormalizedEntropy(probs []float32) float64 {
	if len(probs) <= 1 {
		return 0
	}
	return Entropy(probs) / math.Log(float64(len(probs)))
}

// CrossEntropyLoss computes mean softmax cross-entropy over the batch and
// the gradient with respect to the logits.
func CrossEntropyLoss(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: CrossEntropyLoss got %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad = tensor.New(n, c)
	invN := float32(1) / float32(n)
	for i := 0; i < n; i++ {
		lbl := labels[i]
		if lbl < 0 || lbl >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, c))
		}
		row := probs.Data[i*c : (i+1)*c]
		p := float64(row[lbl])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		dst := grad.Data[i*c : (i+1)*c]
		for j, pv := range row {
			dst[j] = pv * invN
		}
		dst[lbl] -= invN
	}
	loss /= float64(n)
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
