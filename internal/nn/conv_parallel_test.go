package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestConvEvalMatchesTrainForward pins the pooled, batch-parallel
// inference path to the allocation-per-sample training path: with
// activation quantization off the two must agree bit for bit at every
// worker count.
func TestConvEvalMatchesTrainForward(t *testing.T) {
	rng := tensor.NewRNG(5)
	l := NewConv2D("c", 3, 8, 3, 3, 1, 1)
	tensor.FillNormal(l.W.Value, rng, 0.2)
	tensor.FillNormal(l.B.Value, rng, 0.1)
	x := tensor.New(5, 3, 9, 9)
	tensor.FillNormal(x, rng, 1)

	want := l.Forward(x, true)
	for _, workers := range []int{1, 3, 8} {
		prev := tensor.SetWorkers(workers)
		got := l.Forward(x, false)
		tensor.SetWorkers(prev)
		if !got.SameShape(want) {
			t.Fatalf("workers=%d shape %v, want %v", workers, got.Shape(), want.Shape())
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d out[%d] = %g, want %g", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}
