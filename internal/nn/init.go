package nn

import (
	"math"

	"repro/internal/tensor"
)

// InitHe applies He-normal initialization to every Conv2D and Dense layer
// in the chain: weights ~ N(0, 2/fanIn), biases zero. ReLU networks train
// reliably from this init at LeNet scale.
func InitHe(s *Sequential, rng *tensor.RNG) {
	for _, l := range s.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			fanIn := layer.InC * layer.KH * layer.KW
			tensor.FillNormal(layer.W.Value, rng, math.Sqrt(2/float64(fanIn)))
			layer.B.Value.Zero()
		case *Dense:
			tensor.FillNormal(layer.W.Value, rng, math.Sqrt(2/float64(layer.In)))
			layer.B.Value.Zero()
		}
	}
}

// InitUniform applies U[-bound, bound] initialization to every layer,
// used by DDPG output layers which want small initial actions.
func InitUniform(s *Sequential, rng *tensor.RNG, bound float64) {
	for _, l := range s.Layers {
		for _, p := range l.Params() {
			tensor.FillUniform(p.Value, rng, -bound, bound)
		}
	}
}

// InitFanIn applies the DDPG paper's hidden-layer init: U[-1/√fanIn,
// 1/√fanIn] for all but the final Dense layer, and U[-finalBound,
// finalBound] for the final Dense layer.
func InitFanIn(s *Sequential, rng *tensor.RNG, finalBound float64) {
	lastDense := -1
	for i, l := range s.Layers {
		if _, ok := l.(*Dense); ok {
			lastDense = i
		}
	}
	for i, l := range s.Layers {
		d, ok := l.(*Dense)
		if !ok {
			continue
		}
		if i == lastDense {
			tensor.FillUniform(d.W.Value, rng, -finalBound, finalBound)
			tensor.FillUniform(d.B.Value, rng, -finalBound, finalBound)
			continue
		}
		bound := 1 / math.Sqrt(float64(d.In))
		tensor.FillUniform(d.W.Value, rng, -bound, bound)
		tensor.FillUniform(d.B.Value, rng, -bound, bound)
	}
}
