package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := tensor.NewRNG(1)
	logits := tensor.New(8, 10)
	tensor.FillNormal(logits, rng, 3)
	p := Softmax(logits)
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 10; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	b := tensor.FromSlice([]float32{1001, 1002, 1003}, 1, 3)
	pa := Softmax(a)
	pb := Softmax(b)
	if pa.L2Distance(pb) > 1e-5 {
		t.Fatal("softmax must be shift-invariant (and not overflow)")
	}
}

func TestEntropyBounds(t *testing.T) {
	uniform := []float32{0.25, 0.25, 0.25, 0.25}
	onehot := []float32{1, 0, 0, 0}
	if h := Entropy(onehot); h != 0 {
		t.Fatalf("one-hot entropy = %v, want 0", h)
	}
	if h := Entropy(uniform); math.Abs(h-math.Log(4)) > 1e-9 {
		t.Fatalf("uniform entropy = %v, want ln4", h)
	}
	if h := NormalizedEntropy(uniform); math.Abs(h-1) > 1e-9 {
		t.Fatalf("normalized uniform entropy = %v, want 1", h)
	}
}

func TestNormalizedEntropyRangeProperty(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		// Build a valid distribution from absolute values.
		var sum float64
		probs := make([]float32, len(raw))
		for i, v := range raw {
			a := math.Abs(float64(v))
			if math.IsNaN(a) || math.IsInf(a, 0) {
				a = 1
			}
			probs[i] = float32(a) + 1e-6
			sum += float64(probs[i])
		}
		for i := range probs {
			probs[i] = float32(float64(probs[i]) / sum)
		}
		h := NormalizedEntropy(probs)
		return h >= -1e-9 && h <= 1+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{100, 0, 0}, 1, 3)
	loss, _ := CrossEntropyLoss(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
}

func TestCrossEntropyUniformBaseline(t *testing.T) {
	logits := tensor.New(1, 10) // all zeros → uniform
	loss, _ := CrossEntropyLoss(logits, []int{3})
	if math.Abs(loss-math.Log(10)) > 1e-5 {
		t.Fatalf("uniform CE = %v, want ln10", loss)
	}
}

func TestCrossEntropyGradSumsToZeroPerRow(t *testing.T) {
	rng := tensor.NewRNG(2)
	logits := tensor.New(4, 6)
	tensor.FillNormal(logits, rng, 2)
	_, grad := CrossEntropyLoss(logits, []int{0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 6; j++ {
			sum += float64(grad.At(i, j))
		}
		if math.Abs(sum) > 1e-5 {
			t.Fatalf("row %d grad sums to %v (softmax-CE grads sum to 0)", i, sum)
		}
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropyLoss(tensor.New(1, 3), []int{3})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 0, 0,
		0, 5, 0,
		0, 0, 2,
	}, 3, 3)
	if acc := Accuracy(logits, []int{0, 1, 0}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", acc)
	}
}
