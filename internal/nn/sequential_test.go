package nn

import (
	"testing"

	"repro/internal/tensor"
)

func TestSequentialForwardOrder(t *testing.T) {
	d1 := NewDense("d1", 2, 3)
	d2 := NewDense("d2", 3, 1)
	s := NewSequential("s", d1, NewReLU("r"), d2)
	out := s.Forward(tensor.New(4, 2), false)
	if out.Dim(0) != 4 || out.Dim(1) != 1 {
		t.Fatalf("sequential out shape %v", out.Shape())
	}
}

func TestSequentialParamsCollectsAll(t *testing.T) {
	s := NewSequential("s", NewDense("d1", 2, 3), NewReLU("r"), NewDense("d2", 3, 1))
	if got := len(s.Params()); got != 4 {
		t.Fatalf("param count = %d, want 4 (2×W + 2×B)", got)
	}
}

func TestSequentialFLOPsAndBytes(t *testing.T) {
	s := NewSequential("s", NewDense("d1", 10, 20), NewDense("d2", 20, 5))
	if s.FLOPs() != 10*20+20*5 {
		t.Fatalf("FLOPs = %d", s.FLOPs())
	}
	wantBits := int64((10*20+20)*32 + (20*5+5)*32)
	if s.WeightBits() != wantBits {
		t.Fatalf("WeightBits = %d, want %d", s.WeightBits(), wantBits)
	}
	if s.WeightBytes() != wantBits/8 {
		t.Fatalf("WeightBytes = %d", s.WeightBytes())
	}
}

func TestWeightBytesRoundsUpPerLayer(t *testing.T) {
	d := NewDense("d", 1, 3) // 6 values
	d.WeightBitsPerValue = 1 // 6 bits → 1 byte after rounding
	s := NewSequential("s", d)
	if s.WeightBytes() != 1 {
		t.Fatalf("WeightBytes = %d, want 1", s.WeightBytes())
	}
}

func TestFindLayer(t *testing.T) {
	d := NewDense("needle", 2, 2)
	s := NewSequential("s", NewReLU("r"), d)
	if s.FindLayer("needle") != d {
		t.Fatal("FindLayer missed an existing layer")
	}
	if s.FindLayer("absent") != nil {
		t.Fatal("FindLayer invented a layer")
	}
}

func TestMLPStructure(t *testing.T) {
	m := MLP("m", []int{4, 8, 8, 2})
	dense, relu := 0, 0
	for _, l := range m.Layers {
		switch l.(type) {
		case *Dense:
			dense++
		case *ReLU:
			relu++
		}
	}
	if dense != 3 || relu != 2 {
		t.Fatalf("MLP has %d dense, %d relu; want 3, 2 (no output ReLU)", dense, relu)
	}
}

func TestMLPTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MLP("m", []int{4})
}

func TestInitFanInBoundsFinalLayer(t *testing.T) {
	rng := tensor.NewRNG(6)
	m := MLP("m", []int{4, 16, 2})
	InitFanIn(m, rng, 1e-3)
	var lastDense *Dense
	for _, l := range m.Layers {
		if d, ok := l.(*Dense); ok {
			lastDense = d
		}
	}
	for _, v := range lastDense.W.Value.Data {
		if v < -1e-3 || v > 1e-3 {
			t.Fatalf("final layer weight %v outside ±1e-3", v)
		}
	}
}

func TestInitHeNonZero(t *testing.T) {
	rng := tensor.NewRNG(7)
	s := NewSequential("s", NewConv2D("c", 3, 4, 3, 3, 1, 1), NewDense("d", 8, 2))
	InitHe(s, rng)
	for _, p := range s.Params() {
		if p.Name == "c.B" || p.Name == "d.B" {
			continue // biases stay zero
		}
		if p.Value.AbsSum() == 0 {
			t.Fatalf("param %s left at zero", p.Name)
		}
	}
}
