package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// AvgPool2D applies average pooling over NCHW input. SpArSe-style NAS
// cells use it as a cheap downsampler; it is also the standard global-
// pooling head for larger backbones.
type AvgPool2D struct {
	statelessParams
	name           string
	Kernel, Stride int

	inShape []int
}

// NewAvgPool2D returns an average-pool layer.
func NewAvgPool2D(name string, kernel, stride int) *AvgPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %q needs positive kernel/stride, got %d/%d", name, kernel, stride))
	}
	return &AvgPool2D{name: name, Kernel: kernel, Stride: stride}
}

// Name implements Layer.
func (l *AvgPool2D) Name() string { return l.name }

// OutDims returns the spatial output dims for input h×w.
func (l *AvgPool2D) OutDims(h, w int) (int, int) {
	return (h-l.Kernel)/l.Stride + 1, (w-l.Kernel)/l.Stride + 1
}

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: AvgPool2D %q expects NCHW input, got %v", l.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %q yields empty output for input %v", l.name, x.Shape()))
	}
	if train {
		l.inShape = append(l.inShape[:0], x.Shape()...)
	}
	out := tensor.New(n, c, oh, ow)
	inv := float32(1) / float32(l.Kernel*l.Kernel)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			obase := (ni*c + ci) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < l.Kernel; ky++ {
						row := base + (oy*l.Stride+ky)*w + ox*l.Stride
						for kx := 0; kx < l.Kernel; kx++ {
							s += x.Data[row+kx]
						}
					}
					out.Data[obase+oy*ow+ox] = s * inv
				}
			}
		}
	}
	return out
}

// Backward implements Layer: the gradient spreads uniformly over each
// pooling window.
func (l *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(l.inShape) == 0 {
		panic(fmt.Sprintf("nn: AvgPool2D %q backward without forward", l.name))
	}
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	oh, ow := l.OutDims(h, w)
	dx := tensor.New(l.inShape...)
	inv := float32(1) / float32(l.Kernel*l.Kernel)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			obase := (ni*c + ci) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[obase+oy*ow+ox] * inv
					for ky := 0; ky < l.Kernel; ky++ {
						row := base + (oy*l.Stride+ky)*w + ox*l.Stride
						for kx := 0; kx < l.Kernel; kx++ {
							dx.Data[row+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Dropout randomly zeroes activations during training (inverted dropout:
// survivors are scaled by 1/(1−p) so inference needs no correction).
// Inference passes the input through untouched.
type Dropout struct {
	statelessParams
	name string
	// P is the drop probability.
	P float64

	rng  *tensor.RNG
	mask []float32
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(name string, p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout %q probability %g outside [0,1)", name, p))
	}
	return &Dropout{name: name, P: p, rng: tensor.NewRNG(seed + 0xd409)}
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P == 0 {
		return x
	}
	out := x.Clone()
	if cap(l.mask) < out.Len() {
		l.mask = make([]float32, out.Len())
	}
	l.mask = l.mask[:out.Len()]
	scale := float32(1 / (1 - l.P))
	for i := range out.Data {
		if l.rng.Float64() < l.P {
			l.mask[i] = 0
			out.Data[i] = 0
		} else {
			l.mask[i] = scale
			out.Data[i] *= scale
		}
	}
	return out
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) != grad.Len() {
		panic(fmt.Sprintf("nn: Dropout %q backward without matching forward", l.name))
	}
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= l.mask[i]
	}
	return out
}
