// Package nn implements the small neural-network substrate the paper's
// multi-exit models are built from: convolution, dense, ReLU, max-pooling,
// and flatten layers with full forward/backward passes, SGD/Adam
// optimizers, and a softmax cross-entropy loss.
//
// The package is sized for MCU-class networks (LeNet scale): kernels are
// im2col+matmul over float32 and carry per-layer FLOPs and weight-size
// accounting, which the compression and energy models consume. Layers
// optionally apply linear "fake" quantization to weights (offline, via the
// compress package) and activations (ActBits on Conv2D/Dense) so that
// compressed-network accuracy can be evaluated exactly as the paper does.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch and returns the batch output. When train is
// true the layer caches whatever it needs for Backward; inference-only
// calls may skip caching. Backward consumes dL/dOut and returns dL/dIn,
// accumulating parameter gradients into Params().
type Layer interface {
	Name() string
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	// FLOPs returns the multiply-accumulate count for a single sample.
	// The repository counts one MAC as one FLOP throughout; the paper's
	// energy constant (1.5 mJ/MFLOP) is applied to this count.
	FLOPs() int64
	// WeightBits returns the total storage cost of the layer's weights in
	// bits at its current quantization setting (32-bit when unquantized).
	WeightBits() int64
}

// statelessParams is embedded by layers without trainable parameters.
type statelessParams struct{}

func (statelessParams) Params() []*Param  { return nil }
func (statelessParams) FLOPs() int64      { return 0 }
func (statelessParams) WeightBits() int64 { return 0 }

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	statelessParams
	name string
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		if cap(l.mask) < out.Len() {
			l.mask = make([]bool, out.Len())
		}
		l.mask = l.mask[:out.Len()]
	}
	for i, v := range out.Data {
		active := v > 0
		if !active {
			out.Data[i] = 0
		}
		if train {
			l.mask[i] = active
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(l.mask) != grad.Len() {
		panic(fmt.Sprintf("nn: ReLU %q backward without matching forward (mask %d, grad %d)", l.name, len(l.mask), grad.Len()))
	}
	out := grad.Clone()
	for i := range out.Data {
		if !l.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Flatten reshapes [N, C, H, W] (or any rank ≥ 2) into [N, rest].
type Flatten struct {
	statelessParams
	name    string
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		l.inShape = append(l.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	return x.Reshape(n, -1)
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(l.inShape) == 0 {
		panic(fmt.Sprintf("nn: Flatten %q backward without forward", l.name))
	}
	return grad.Reshape(l.inShape...)
}

// MaxPool2D applies non-overlapping (or strided) 2-D max pooling over NCHW.
type MaxPool2D struct {
	statelessParams
	name           string
	Kernel, Stride int

	inShape []int
	argmax  []int
}

// NewMaxPool2D returns a max-pool layer with the given square kernel and
// stride.
func NewMaxPool2D(name string, kernel, stride int) *MaxPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q needs positive kernel/stride, got %d/%d", name, kernel, stride))
	}
	return &MaxPool2D{name: name, Kernel: kernel, Stride: stride}
}

// Name implements Layer.
func (l *MaxPool2D) Name() string { return l.name }

// OutDims returns the spatial output dims for input h×w.
func (l *MaxPool2D) OutDims(h, w int) (int, int) {
	return (h-l.Kernel)/l.Stride + 1, (w-l.Kernel)/l.Stride + 1
}

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D %q expects NCHW input, got %v", l.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := l.OutDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q yields empty output for input %v", l.name, x.Shape()))
	}
	out := tensor.New(n, c, oh, ow)
	if train {
		l.inShape = append(l.inShape[:0], x.Shape()...)
		if cap(l.argmax) < out.Len() {
			l.argmax = make([]int, out.Len())
		}
		l.argmax = l.argmax[:out.Len()]
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			planeBase := (ni*c + ci) * h * w
			outBase := (ni*c + ci) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := planeBase + (oy*l.Stride)*w + ox*l.Stride
					best := x.Data[bestIdx]
					for ky := 0; ky < l.Kernel; ky++ {
						rowBase := planeBase + (oy*l.Stride+ky)*w
						for kx := 0; kx < l.Kernel; kx++ {
							idx := rowBase + ox*l.Stride + kx
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					o := outBase + oy*ow + ox
					out.Data[o] = best
					if train {
						l.argmax[o] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(l.inShape) == 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %q backward without forward", l.name))
	}
	dx := tensor.New(l.inShape...)
	for o, src := range l.argmax {
		dx.Data[src] += grad.Data[o]
	}
	return dx
}
