package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Sequential chains layers. The multi-exit network composes several
// Sequential segments (trunk pieces and exit branches) so inference can be
// suspended after a segment and resumed later — the paper's incremental
// inference.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Name returns the segment name.
func (s *Sequential) Name() string { return s.name }

// Add appends layers to the chain.
func (s *Sequential) Add(layers ...Layer) { s.Layers = append(s.Layers, layers...) }

// Forward runs every layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the chain in reverse, returning dL/dIn.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in the chain.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// FLOPs returns the per-sample MAC count of the chain.
func (s *Sequential) FLOPs() int64 {
	var f int64
	for _, l := range s.Layers {
		f += l.FLOPs()
	}
	return f
}

// WeightBits returns the total weight storage of the chain in bits.
func (s *Sequential) WeightBits() int64 {
	var b int64
	for _, l := range s.Layers {
		b += l.WeightBits()
	}
	return b
}

// WeightBytes returns the total weight storage of the chain in bytes,
// rounding each layer up to whole bytes.
func (s *Sequential) WeightBytes() int64 {
	var b int64
	for _, l := range s.Layers {
		b += (l.WeightBits() + 7) / 8
	}
	return b
}

// FindLayer returns the first layer with the given name, or nil.
func (s *Sequential) FindLayer(name string) Layer {
	for _, l := range s.Layers {
		if l.Name() == name {
			return l
		}
	}
	return nil
}

// MLP builds a fully-connected network with ReLU activations between the
// given layer sizes, used for the DDPG actor and critic. The final layer
// has no activation (callers apply tanh/sigmoid as needed).
func MLP(name string, sizes []int) *Sequential {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: MLP %q needs at least input and output sizes, got %v", name, sizes))
	}
	s := NewSequential(name)
	for i := 0; i+1 < len(sizes); i++ {
		s.Add(NewDense(fmt.Sprintf("%s.fc%d", name, i), sizes[i], sizes[i+1]))
		if i+2 < len(sizes) {
			s.Add(NewReLU(fmt.Sprintf("%s.relu%d", name, i)))
		}
	}
	return s
}
