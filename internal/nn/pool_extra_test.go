package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAvgPoolForwardValues(t *testing.T) {
	l := NewAvgPool2D("a", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := l.Forward(x, false)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("avg pool = %v, want %v", out.Data, want)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewAvgPool2D("a", 2, 2)
	x := tensor.New(1, 2, 4, 4)
	tensor.FillNormal(x, rng, 1)
	checkLayerGradients(t, l, x, 5e-2)
}

func TestAvgPoolPreservesMean(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewAvgPool2D("a", 2, 2)
	x := tensor.New(1, 1, 6, 6)
	tensor.FillUniform(x, rng, 0, 1)
	out := l.Forward(x, false)
	inMean := x.Sum() / float64(x.Len())
	outMean := out.Sum() / float64(out.Len())
	if math.Abs(inMean-outMean) > 1e-5 {
		t.Fatalf("non-overlapping average pooling must preserve the mean: %v vs %v", inMean, outMean)
	}
}

func TestDropoutInferencePassthrough(t *testing.T) {
	l := NewDropout("d", 0.5, 1)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	out := l.Forward(x, false)
	if out.L2Distance(x) != 0 {
		t.Fatal("inference-mode dropout must be identity")
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	l := NewDropout("d", 0.5, 2)
	x := tensor.New(1, 10000)
	x.Fill(1)
	out := l.Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1−0.5)
		default:
			t.Fatalf("unexpected value %v (inverted dropout scales survivors)", v)
		}
	}
	frac := float64(zeros) / float64(out.Len())
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %.3f, want ≈0.5", frac)
	}
	// Expected activation preserved.
	if mean := out.Sum() / float64(out.Len()); math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean after dropout %v, want ≈1", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	l := NewDropout("d", 0.3, 3)
	x := tensor.New(1, 100)
	x.Fill(1)
	out := l.Forward(x, true)
	grad := tensor.New(1, 100)
	grad.Fill(1)
	dx := l.Backward(grad)
	for i := range out.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient mask must match forward mask")
		}
	}
}

func TestDropoutInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout("d", 1.0, 1)
}
