package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dParam by central differences, where the
// loss is the sum of the layer chain's output elements weighted by w.
func numericalGrad(forward func() float64, v *float32) float64 {
	const eps = 1e-2
	orig := *v
	*v = orig + eps
	plus := forward()
	*v = orig - eps
	minus := forward()
	*v = orig
	return (plus - minus) / (2 * eps)
}

// checkLayerGradients validates Backward against finite differences for
// both parameters and inputs.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(99)
	// Random linear loss L = Σ w_i out_i makes dL/dOut = w.
	out := layer.Forward(x, true)
	w := tensor.New(out.Shape()...)
	tensor.FillNormal(w, rng, 1)

	forward := func() float64 {
		o := layer.Forward(x, true)
		var s float64
		for i, v := range o.Data {
			s += float64(v) * float64(w.Data[i])
		}
		return s
	}

	// Analytic gradients.
	layer.Forward(x, true)
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward(w.Clone())

	for _, p := range layer.Params() {
		for _, idx := range []int{0, p.Value.Len() / 2, p.Value.Len() - 1} {
			got := float64(p.Grad.Data[idx])
			want := numericalGrad(forward, &p.Value.Data[idx])
			if math.Abs(got-want) > tol*(math.Abs(want)+1) {
				t.Fatalf("%s param %s[%d]: grad %g, numeric %g", layer.Name(), p.Name, idx, got, want)
			}
		}
	}
	for _, idx := range []int{0, x.Len() / 2, x.Len() - 1} {
		got := float64(dx.Data[idx])
		want := numericalGrad(forward, &x.Data[idx])
		if math.Abs(got-want) > tol*(math.Abs(want)+1) {
			t.Fatalf("%s input[%d]: grad %g, numeric %g", layer.Name(), idx, got, want)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewConv2D("c", 2, 3, 3, 3, 1, 1)
	tensor.FillNormal(l.W.Value, rng, 0.5)
	tensor.FillNormal(l.B.Value, rng, 0.5)
	x := tensor.New(2, 2, 5, 5)
	tensor.FillNormal(x, rng, 1)
	checkLayerGradients(t, l, x, 5e-2)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewConv2D("cs", 1, 2, 2, 2, 2, 0)
	tensor.FillNormal(l.W.Value, rng, 0.5)
	x := tensor.New(1, 1, 6, 6)
	tensor.FillNormal(x, rng, 1)
	checkLayerGradients(t, l, x, 5e-2)
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	l := NewDense("d", 7, 4)
	tensor.FillNormal(l.W.Value, rng, 0.5)
	tensor.FillNormal(l.B.Value, rng, 0.5)
	x := tensor.New(3, 7)
	tensor.FillNormal(x, rng, 1)
	checkLayerGradients(t, l, x, 5e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	l := NewMaxPool2D("p", 2, 2)
	x := tensor.New(1, 2, 4, 4)
	tensor.FillNormal(x, rng, 1)
	// Max pooling is piecewise linear; finite differences are valid away
	// from ties, which random init avoids almost surely.
	checkLayerGradients(t, l, x, 5e-2)
}

func TestCrossEntropyGradientNumerically(t *testing.T) {
	rng := tensor.NewRNG(5)
	logits := tensor.New(4, 5)
	tensor.FillNormal(logits, rng, 1)
	labels := []int{0, 2, 4, 1}

	_, grad := CrossEntropyLoss(logits, labels)
	for _, idx := range []int{0, 7, 19} {
		want := numericalGrad(func() float64 {
			l, _ := CrossEntropyLoss(logits, labels)
			return l
		}, &logits.Data[idx])
		got := float64(grad.Data[idx])
		if math.Abs(got-want) > 1e-2*(math.Abs(want)+1) {
			t.Fatalf("CE grad[%d] = %g, numeric %g", idx, got, want)
		}
	}
}
