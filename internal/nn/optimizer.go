package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates a fixed set of parameters from their accumulated
// gradients.
type Optimizer interface {
	Step()
	ZeroGrad()
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay. It is the optimizer used to train the multi-exit
// networks on the synthetic dataset.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	params      []*Param
	velocities  []*tensor.Tensor
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD learning rate must be positive, got %g", lr))
	}
	vel := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		vel[i] = tensor.New(p.Value.Shape()...)
	}
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, params: params, velocities: vel}
}

// Step implements Optimizer.
func (o *SGD) Step() {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for i, p := range o.params {
		v := o.velocities[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j]
			if wd != 0 {
				g += wd * p.Value.Data[j]
			}
			v.Data[j] = mom*v.Data[j] + g
			p.Value.Data[j] -= lr * v.Data[j]
		}
	}
}

// ZeroGrad implements Optimizer.
func (o *SGD) ZeroGrad() {
	for _, p := range o.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm. LeNet-scale SGD with
// momentum occasionally meets exploding gradients on hard batches;
// clipping keeps training stable without tuning the learning rate per
// dataset.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// Adam implements the Adam optimizer; the DDPG actor/critic networks use
// it, matching the original DDPG recipe.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	params []*Param
	m, v   []*tensor.Tensor
	t      int
}

// NewAdam builds an Adam optimizer with the standard defaults
// (β1=0.9, β2=0.999, ε=1e-8) unless overridden via the fields.
func NewAdam(params []*Param, lr float64) *Adam {
	m := make([]*tensor.Tensor, len(params))
	v := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		m[i] = tensor.New(p.Value.Shape()...)
		v[i] = tensor.New(p.Value.Shape()...)
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8, params: params, m: m, v: v}
}

// Step implements Optimizer.
func (o *Adam) Step() {
	o.t++
	b1 := o.Beta1
	b2 := o.Beta2
	bc1 := 1 - math.Pow(b1, float64(o.t))
	bc2 := 1 - math.Pow(b2, float64(o.t))
	for i, p := range o.params {
		mi, vi := o.m[i], o.v[i]
		for j := range p.Value.Data {
			g := float64(p.Grad.Data[j])
			mNew := b1*float64(mi.Data[j]) + (1-b1)*g
			vNew := b2*float64(vi.Data[j]) + (1-b2)*g*g
			mi.Data[j] = float32(mNew)
			vi.Data[j] = float32(vNew)
			mHat := mNew / bc1
			vHat := vNew / bc2
			p.Value.Data[j] -= float32(o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon))
		}
	}
}

// ZeroGrad implements Optimizer.
func (o *Adam) ZeroGrad() {
	for _, p := range o.params {
		p.ZeroGrad()
	}
}
