package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// paramBlob is the on-disk form of one parameter.
type paramBlob struct {
	Name  string
	Shape []int
	Data  []float32
}

// modelBlob is the on-disk form of a parameter set.
type modelBlob struct {
	// Format is a version tag for forward compatibility.
	Format int
	Params []paramBlob
}

const modelFormatVersion = 1

// SaveParams serializes a parameter set (weights only, not gradients) to
// w using encoding/gob. The layer structure itself is code, so loading
// requires rebuilding the same architecture first.
func SaveParams(w io.Writer, params []*Param) error {
	blob := modelBlob{Format: modelFormatVersion}
	for _, p := range params {
		blob.Params = append(blob.Params, paramBlob{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  p.Value.Data,
		})
	}
	return gob.NewEncoder(w).Encode(blob)
}

// LoadParams reads parameters saved by SaveParams into the given
// parameter set, matching by name and validating shapes.
func LoadParams(r io.Reader, params []*Param) error {
	var blob modelBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return fmt.Errorf("nn: decode model: %w", err)
	}
	if blob.Format != modelFormatVersion {
		return fmt.Errorf("nn: unsupported model format %d", blob.Format)
	}
	byName := make(map[string]paramBlob, len(blob.Params))
	for _, pb := range blob.Params {
		byName[pb.Name] = pb
	}
	for _, p := range params {
		pb, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: model file missing parameter %q", p.Name)
		}
		if len(pb.Data) != p.Value.Len() {
			return fmt.Errorf("nn: parameter %q has %d values, want %d", p.Name, len(pb.Data), p.Value.Len())
		}
		if len(pb.Shape) != p.Value.Rank() {
			return fmt.Errorf("nn: parameter %q rank mismatch", p.Name)
		}
		for i, d := range pb.Shape {
			if p.Value.Dim(i) != d {
				return fmt.Errorf("nn: parameter %q shape %v, want %v", p.Name, pb.Shape, p.Value.Shape())
			}
		}
		copy(p.Value.Data, pb.Data)
	}
	return nil
}

// SaveParamsFile writes parameters to a file path.
func SaveParamsFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadParamsFile reads parameters from a file path.
func LoadParamsFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}
