package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := NewSequential("m", NewConv2D("c", 3, 4, 3, 3, 1, 1), NewDense("d", 8, 2))
	InitHe(src, rng)

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}

	dst := NewSequential("m", NewConv2D("c", 3, 4, 3, 3, 1, 1), NewDense("d", 8, 2))
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if sp[i].Value.L2Distance(dp[i].Value) != 0 {
			t.Fatalf("param %s differs after round trip", sp[i].Name)
		}
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	src := NewSequential("m", NewDense("d", 4, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential("m", NewDense("other", 4, 2))
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	src := NewSequential("m", NewDense("d", 4, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential("m", NewDense("d", 4, 3))
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dst := NewSequential("m", NewDense("d", 4, 2))
	if err := LoadParams(bytes.NewBufferString("not a gob"), dst.Params()); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/model.gob"
	rng := tensor.NewRNG(2)
	src := NewSequential("m", NewDense("d", 6, 3))
	InitHe(src, rng)
	if err := SaveParamsFile(path, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewSequential("m", NewDense("d", 6, 3))
	if err := LoadParamsFile(path, dst.Params()); err != nil {
		t.Fatal(err)
	}
	if src.Params()[0].Value.L2Distance(dst.Params()[0].Value) != 0 {
		t.Fatal("file round trip corrupted weights")
	}
}
