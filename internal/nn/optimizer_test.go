package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadratic builds params and a gradient setter for L = Σ (x−target)².
func quadratic(target float32) (*Param, func()) {
	p := newParam("x", 4)
	for i := range p.Value.Data {
		p.Value.Data[i] = 5
	}
	setGrad := func() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 2 * (p.Value.Data[i] - target)
		}
	}
	return p, setGrad
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p, setGrad := quadratic(1)
	opt := NewSGD([]*Param{p}, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		opt.ZeroGrad()
		setGrad()
		opt.Step()
	}
	for _, v := range p.Value.Data {
		if math.Abs(float64(v-1)) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", p.Value.Data)
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p, setGrad := quadratic(1)
		opt := NewSGD([]*Param{p}, 0.02, momentum, 0)
		for i := 0; i < 30; i++ {
			opt.ZeroGrad()
			setGrad()
			opt.Step()
		}
		return math.Abs(float64(p.Value.Data[0] - 1))
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should accelerate convergence on a quadratic")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := newParam("x", 1)
	p.Value.Data[0] = 1
	opt := NewSGD([]*Param{p}, 0.1, 0, 0.5)
	opt.Step() // zero task gradient; only decay acts
	if p.Value.Data[0] >= 1 {
		t.Fatal("weight decay should shrink the parameter")
	}
}

func TestSGDInvalidLRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(nil, 0, 0, 0)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p, setGrad := quadratic(-2)
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		setGrad()
		opt.Step()
	}
	for _, v := range p.Value.Data {
		if math.Abs(float64(v+2)) > 1e-2 {
			t.Fatalf("Adam did not converge: %v", p.Value.Data)
		}
	}
}

func TestZeroGradClears(t *testing.T) {
	p, setGrad := quadratic(0)
	opt := NewSGD([]*Param{p}, 0.1, 0, 0)
	setGrad()
	opt.ZeroGrad()
	for _, g := range p.Grad.Data {
		if g != 0 {
			t.Fatal("ZeroGrad must clear gradients")
		}
	}
}

func TestMLPTrainsXOR(t *testing.T) {
	// End-to-end optimizer+layers sanity: a small MLP can fit XOR.
	rng := tensor.NewRNG(42)
	net := MLP("xor", []int{2, 8, 2})
	InitHe(net, rng)
	opt := NewAdam(net.Params(), 0.02)
	x := tensor.FromSlice([]float32{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	var loss float64
	for i := 0; i < 800; i++ {
		opt.ZeroGrad()
		out := net.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = CrossEntropyLoss(out, labels)
		net.Backward(grad)
		opt.Step()
	}
	if loss > 0.1 {
		t.Fatalf("XOR loss after training = %v", loss)
	}
	if acc := Accuracy(net.Forward(x, false), labels); acc != 1 {
		t.Fatalf("XOR accuracy = %v", acc)
	}
}
