package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW input with weights stored as
// [OutC, InC, KH, KW]. Forward lowers each sample with im2col and performs
// a single matmul against the flattened filter bank, which is also how the
// fixed-point MCU kernels in internal/fixed are organized.
//
// Channel pruning (the paper's Eq. 2) shrinks InC; the compress package
// rebuilds pruned Conv2D layers via NewConv2D with the reduced channel
// count and copies the surviving filters. ActBits > 0 applies linear
// activation quantization (the paper's Eq. 3 adapted to the non-negative
// post-ReLU range) during inference.
type Conv2D struct {
	name string

	InC, OutC int
	KH, KW    int
	StrideH   int
	StrideW   int
	PadH      int
	PadW      int

	// W has shape [OutC, InC, KH, KW]; B has shape [OutC].
	W *Param
	B *Param

	// WeightBitsPerValue is the current weight bitwidth for storage
	// accounting (32 when unquantized). Set by the compress package.
	WeightBitsPerValue int
	// ActBits, when in [1, 31], fake-quantizes the layer output to that
	// many bits during inference (train=false) forward passes.
	ActBits int
	// KeptInC is the number of surviving input channels after channel
	// pruning (0 means unpruned ⇒ InC). Pruned channels are zero-masked
	// in W rather than physically removed, so the graph stays intact;
	// FLOPs and weight storage are accounted at the kept count, matching
	// a real MCU deployment that skips pruned channels.
	KeptInC int

	// spatial dims of the most recent input, for FLOPs accounting and
	// backward.
	lastH, lastW int
	lastInput    *tensor.Tensor
	lastCols     []*tensor.Tensor
	// nominal input spatial dims, set by the architecture builder so
	// FLOPs() is meaningful before the first Forward call.
	NomH, NomW int
}

// NewConv2D builds a convolution layer. Weights are zero until initialized
// (see InitHe) or loaded.
func NewConv2D(name string, inC, outC, kh, kw, stride, pad int) *Conv2D {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: Conv2D %q invalid geometry in=%d out=%d k=%dx%d stride=%d pad=%d",
			name, inC, outC, kh, kw, stride, pad))
	}
	return &Conv2D{
		name:               name,
		InC:                inC,
		OutC:               outC,
		KH:                 kh,
		KW:                 kw,
		StrideH:            stride,
		StrideW:            stride,
		PadH:               pad,
		PadW:               pad,
		W:                  newParam(name+".W", outC, inC, kh, kw),
		B:                  newParam(name+".B", outC),
		WeightBitsPerValue: 32,
	}
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.name }

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// Geom returns the convolution geometry for an h×w input.
func (l *Conv2D) Geom(h, w int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: l.InC, InH: h, InW: w,
		KH: l.KH, KW: l.KW,
		StrideH: l.StrideH, StrideW: l.StrideW,
		PadH: l.PadH, PadW: l.PadW,
	}
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D %q expects NCHW input, got %v", l.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != l.InC {
		panic(fmt.Sprintf("nn: Conv2D %q expects %d input channels, got %d", l.name, l.InC, c))
	}
	g := l.Geom(h, w)
	if err := g.Validate(); err != nil {
		// Wrap with the layer name like every sibling panic in this file —
		// a bare geometry error is useless in a deep-stack report.
		panic(fmt.Sprintf("nn: Conv2D %q: %v", l.name, err))
	}
	oh, ow := g.OutH(), g.OutW()
	l.lastH, l.lastW = h, w

	wMat := l.W.Value.Reshape(l.OutC, l.InC*l.KH*l.KW)
	out := tensor.New(n, l.OutC, oh, ow)
	sampleVol := c * h * w
	outVol := l.OutC * oh * ow
	colRows, colCols := l.InC*l.KH*l.KW, oh*ow

	if train {
		// Training path: im2col matrices must outlive the call for
		// Backward, so they are freshly allocated and retained.
		l.lastInput = x
		l.lastCols = l.lastCols[:0]
		res := tensor.New(l.OutC, oh*ow)
		for ni := 0; ni < n; ni++ {
			img := tensor.FromSlice(x.Data[ni*sampleVol:(ni+1)*sampleVol], c, h, w)
			col := tensor.Im2Col(img, g)
			l.lastCols = append(l.lastCols, col)
			tensor.MatMulInto(res, wMat, col)
			l.addBias(out.Data[ni*outVol:(ni+1)*outVol], res.Data, oh*ow)
		}
		return out
	}

	// Inference path: samples are independent, so the batch is banded
	// across workers; each band reuses one pooled im2col matrix and one
	// pooled GEMM result, eliminating the two per-sample allocations that
	// dominated the naive path. Inside a band the GEMM runs serial — the
	// batch split already saturates the cores, so nested fan-out would
	// only add scheduler overhead. A single-sample call (the runtime's
	// event-driven inference) has no batch to split, so it uses the
	// row-parallel MatMulInto instead.
	gemm := tensor.MatMulSerialInto
	if n == 1 {
		gemm = tensor.MatMulInto
	}
	tensor.ParallelFor(n, func(lo, hi int) {
		colBuf := tensor.GetBuf(colRows * colCols)
		resBuf := tensor.GetBuf(outVol)
		defer tensor.PutBuf(colBuf)
		defer tensor.PutBuf(resBuf)
		col := tensor.FromSlice(colBuf, colRows, colCols)
		res := tensor.FromSlice(resBuf, l.OutC, oh*ow)
		for ni := lo; ni < hi; ni++ {
			img := tensor.FromSlice(x.Data[ni*sampleVol:(ni+1)*sampleVol], c, h, w)
			tensor.Im2ColInto(col, img, g)
			gemm(res, wMat, col)
			l.addBias(out.Data[ni*outVol:(ni+1)*outVol], res.Data, oh*ow)
		}
	})
	if l.ActBits > 0 {
		FakeQuantizeActivations(out, l.ActBits)
	}
	return out
}

// addBias copies the GEMM result into the output sample and adds the
// per-channel bias.
func (l *Conv2D) addBias(dst, res []float32, spatial int) {
	copy(dst, res)
	for oc := 0; oc < l.OutC; oc++ {
		b := l.B.Value.Data[oc]
		row := dst[oc*spatial : (oc+1)*spatial]
		for i := range row {
			row[i] += b
		}
	}
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic(fmt.Sprintf("nn: Conv2D %q backward without forward", l.name))
	}
	x := l.lastInput
	n := x.Dim(0)
	g := l.Geom(l.lastH, l.lastW)
	oh, ow := g.OutH(), g.OutW()
	outVol := l.OutC * oh * ow

	wMat := l.W.Value.Reshape(l.OutC, l.InC*l.KH*l.KW)
	dwMat := l.W.Grad.Reshape(l.OutC, l.InC*l.KH*l.KW)
	dx := tensor.New(x.Shape()...)
	sampleVol := x.Dim(1) * l.lastH * l.lastW

	for ni := 0; ni < n; ni++ {
		dOut := tensor.FromSlice(grad.Data[ni*outVol:(ni+1)*outVol], l.OutC, oh*ow)
		col := l.lastCols[ni]
		// dW += dOut × colᵀ
		dwMat.AddInPlace(tensor.MatMulTransB(dOut, col))
		// dB += row sums of dOut
		for oc := 0; oc < l.OutC; oc++ {
			var s float32
			row := dOut.Data[oc*oh*ow : (oc+1)*oh*ow]
			for _, v := range row {
				s += v
			}
			l.B.Grad.Data[oc] += s
		}
		// dcol = Wᵀ × dOut, then scatter back to the image gradient.
		dcol := tensor.MatMulTransA(wMat, dOut)
		dimg := tensor.Col2Im(dcol, g)
		copy(dx.Data[ni*sampleVol:(ni+1)*sampleVol], dimg.Data)
	}
	return dx
}

// EffectiveInC returns the input-channel count used for cost accounting:
// KeptInC when pruned, InC otherwise.
func (l *Conv2D) EffectiveInC() int {
	if l.KeptInC > 0 {
		return l.KeptInC
	}
	return l.InC
}

// FLOPs implements Layer: MACs for one sample at the nominal input size,
// reflecting channel pruning.
func (l *Conv2D) FLOPs() int64 {
	h, w := l.NomH, l.NomW
	if h == 0 || w == 0 {
		h, w = l.lastH, l.lastW
	}
	if h == 0 || w == 0 {
		return 0
	}
	g := l.Geom(h, w)
	return int64(l.OutC) * int64(l.EffectiveInC()) * int64(l.KH) * int64(l.KW) * int64(g.OutH()) * int64(g.OutW())
}

// WeightCount returns the number of stored weight and bias values,
// reflecting channel pruning.
func (l *Conv2D) WeightCount() int64 {
	return int64(l.OutC)*int64(l.EffectiveInC())*int64(l.KH)*int64(l.KW) + int64(l.OutC)
}

// WeightBits implements Layer.
func (l *Conv2D) WeightBits() int64 {
	return l.WeightCount() * int64(l.WeightBitsPerValue)
}

// Dense is a fully-connected layer: out = x·Wᵀ + b with W shaped
// [Out, In]. Like Conv2D it carries bit-width accounting and optional
// activation fake-quantization.
type Dense struct {
	name    string
	In, Out int

	W *Param
	B *Param

	WeightBitsPerValue int
	ActBits            int
	// KeptIn is the number of surviving input activations after pruning
	// (0 means unpruned ⇒ In); see Conv2D.KeptInC.
	KeptIn int
	// Final marks the layer as a classifier head; heads skip activation
	// quantization because their logits feed softmax directly.
	Final bool

	lastInput *tensor.Tensor
}

// NewDense builds a fully-connected layer.
func NewDense(name string, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense %q invalid dims in=%d out=%d", name, in, out))
	}
	return &Dense{
		name:               name,
		In:                 in,
		Out:                out,
		W:                  newParam(name+".W", out, in),
		B:                  newParam(name+".B", out),
		WeightBitsPerValue: 32,
	}
}

// Name implements Layer.
func (l *Dense) Name() string { return l.name }

// Params implements Layer.
func (l *Dense) Params() []*Param { return []*Param{l.W, l.B} }

// Forward implements Layer.
func (l *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 {
		panic(fmt.Sprintf("nn: Dense %q expects [N, features] input, got %v", l.name, x.Shape()))
	}
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Dense %q expects %d features, got %d", l.name, l.In, x.Dim(1)))
	}
	if train {
		l.lastInput = x
	}
	out := tensor.MatMulTransB(x, l.W.Value)
	n := x.Dim(0)
	for ni := 0; ni < n; ni++ {
		row := out.Data[ni*l.Out : (ni+1)*l.Out]
		for j := range row {
			row[j] += l.B.Value.Data[j]
		}
	}
	if !train && l.ActBits > 0 && !l.Final {
		FakeQuantizeActivations(out, l.ActBits)
	}
	return out
}

// Backward implements Layer.
func (l *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastInput == nil {
		panic(fmt.Sprintf("nn: Dense %q backward without forward", l.name))
	}
	// dW += gradᵀ × x ; dB += column sums ; dx = grad × W
	l.W.Grad.AddInPlace(tensor.MatMulTransA(grad, l.lastInput))
	n := grad.Dim(0)
	for ni := 0; ni < n; ni++ {
		row := grad.Data[ni*l.Out : (ni+1)*l.Out]
		for j, v := range row {
			l.B.Grad.Data[j] += v
		}
	}
	return tensor.MatMul(grad, l.W.Value)
}

// EffectiveIn returns the input count used for cost accounting.
func (l *Dense) EffectiveIn() int {
	if l.KeptIn > 0 {
		return l.KeptIn
	}
	return l.In
}

// FLOPs implements Layer.
func (l *Dense) FLOPs() int64 { return int64(l.EffectiveIn()) * int64(l.Out) }

// WeightCount returns the number of stored weight and bias values,
// reflecting pruning.
func (l *Dense) WeightCount() int64 { return int64(l.EffectiveIn())*int64(l.Out) + int64(l.Out) }

// WeightBits implements Layer.
func (l *Dense) WeightBits() int64 { return l.WeightCount() * int64(l.WeightBitsPerValue) }

// FakeQuantizeActivations linearly quantizes the (assumed non-negative
// ReLU-range, clamping negatives) activations of t to the given number of
// bits using a dynamic per-tensor scale, mirroring the paper's activation
// quantization: values are truncated into [0, 2^bits − 1] quantization
// levels spanning the observed range.
func FakeQuantizeActivations(t *tensor.Tensor, bits int) {
	FakeQuantizeSlice(t.Data, bits)
}

// FakeQuantizeSlice is FakeQuantizeActivations over a raw value slice; the
// compiled inference plans (internal/plan) call it against arena storage.
// Both entry points share this one loop so plan output stays bit-identical
// to the layer walk.
func FakeQuantizeSlice(data []float32, bits int) {
	if bits <= 0 || bits >= 32 {
		return
	}
	var maxV float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return
	}
	levels := float32(uint32(1)<<uint(bits)) - 1
	scale := maxV / levels
	for i, v := range data {
		if v < 0 {
			// Negative values only occur pre-ReLU on classifier heads,
			// which skip quantization; clamp defensively.
			v = 0
		}
		q := float32(int32(v/scale + 0.5))
		if q > levels {
			q = levels
		}
		data[i] = q * scale
	}
}
