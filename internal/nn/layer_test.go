package nn

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 4)
	out := l.Forward(x, true)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("ReLU fwd = %v", out.Data)
		}
	}
	grad := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 4)
	dx := l.Backward(grad)
	wantG := []float32{0, 0, 1, 0}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("ReLU bwd = %v", dx.Data)
		}
	}
}

func TestReLUDoesNotMutateInput(t *testing.T) {
	l := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 2}, 1, 2)
	l.Forward(x, false)
	if x.Data[0] != -1 {
		t.Fatal("ReLU must not mutate its input")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	l := NewFlatten("f")
	x := tensor.New(2, 3, 4, 5)
	out := l.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 60 {
		t.Fatalf("Flatten shape %v", out.Shape())
	}
	back := l.Backward(tensor.New(2, 60))
	if back.Rank() != 4 || back.Dim(3) != 5 {
		t.Fatalf("Flatten backward shape %v", back.Shape())
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	l := NewMaxPool2D("p", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out := l.Forward(x, false)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool fwd = %v, want %v", out.Data, want)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	l := NewMaxPool2D("p", 2, 2)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	l.Forward(x, true)
	dx := l.Backward(tensor.FromSlice([]float32{10}, 1, 1, 1, 1))
	if dx.Data[3] != 10 || dx.Data[0] != 0 {
		t.Fatalf("pool bwd = %v", dx.Data)
	}
}

func TestConv2DKnownKernel(t *testing.T) {
	// A 1x1 identity kernel must reproduce the input plus bias.
	l := NewConv2D("c", 1, 1, 1, 1, 1, 0)
	l.W.Value.Data[0] = 1
	l.B.Value.Data[0] = 0.5
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := l.Forward(x, false)
	want := []float32{1.5, 2.5, 3.5, 4.5}
	for i, w := range want {
		if math.Abs(float64(out.Data[i]-w)) > 1e-6 {
			t.Fatalf("conv out = %v, want %v", out.Data, want)
		}
	}
}

func TestConv2DSumKernel(t *testing.T) {
	// A 3x3 all-ones kernel with padding computes local sums.
	l := NewConv2D("c", 1, 1, 3, 3, 1, 1)
	l.W.Value.Fill(1)
	x := tensor.New(1, 1, 3, 3)
	x.Fill(1)
	out := l.Forward(x, false)
	// Center of 3x3 all-ones image: 9 neighbors in bounds.
	if out.At(0, 0, 1, 1) != 9 {
		t.Fatalf("center sum = %v, want 9", out.At(0, 0, 1, 1))
	}
	// Corner: 4 in bounds.
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner sum = %v, want 4", out.At(0, 0, 0, 0))
	}
}

func TestConv2DChannelCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewConv2D("c", 3, 1, 3, 3, 1, 1)
	l.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestDenseForwardValues(t *testing.T) {
	l := NewDense("d", 2, 2)
	copy(l.W.Value.Data, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.B.Value.Data, []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	out := l.Forward(x, false)
	// out = x·Wᵀ + b = [1+2+10, 3+4+20]
	if out.Data[0] != 13 || out.Data[1] != 27 {
		t.Fatalf("dense out = %v", out.Data)
	}
}

func TestFLOPsAccounting(t *testing.T) {
	c := NewConv2D("c", 3, 6, 5, 5, 1, 0)
	c.NomH, c.NomW = 32, 32
	if got := c.FLOPs(); got != 6*3*25*28*28 {
		t.Fatalf("conv FLOPs = %d", got)
	}
	d := NewDense("d", 100, 10)
	if d.FLOPs() != 1000 {
		t.Fatalf("dense FLOPs = %d", d.FLOPs())
	}
}

func TestPrunedAccounting(t *testing.T) {
	c := NewConv2D("c", 6, 4, 3, 3, 1, 1)
	c.NomH, c.NomW = 8, 8
	full := c.FLOPs()
	c.KeptInC = 3
	if c.FLOPs() != full/2 {
		t.Fatalf("pruned FLOPs = %d, want %d", c.FLOPs(), full/2)
	}
	if c.WeightCount() != int64(4*3*9+4) {
		t.Fatalf("pruned weights = %d", c.WeightCount())
	}
	d := NewDense("d", 10, 5)
	d.KeptIn = 4
	if d.FLOPs() != 20 {
		t.Fatalf("pruned dense FLOPs = %d", d.FLOPs())
	}
}

func TestWeightBitsAccounting(t *testing.T) {
	d := NewDense("d", 10, 10)
	fullBits := d.WeightBits()
	if fullBits != int64(110*32) {
		t.Fatalf("full bits = %d", fullBits)
	}
	d.WeightBitsPerValue = 4
	if d.WeightBits() != int64(110*4) {
		t.Fatalf("4-bit = %d", d.WeightBits())
	}
}

func TestFakeQuantizeActivations(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 0.5, 1.0, 0.25}, 4)
	FakeQuantizeActivations(x, 2) // 3 levels over [0, 1]: {0, 1/3, 2/3, 1}
	levels := map[float32]bool{}
	for _, v := range x.Data {
		levels[v] = true
	}
	if len(levels) > 4 {
		t.Fatalf("2-bit quantization produced %d levels", len(levels))
	}
	if x.Data[2] != 1.0 {
		t.Fatalf("max value must map to itself, got %v", x.Data[2])
	}
}

func TestFakeQuantizeHighBitsNearLossless(t *testing.T) {
	rng := tensor.NewRNG(8)
	x := tensor.New(100)
	tensor.FillUniform(x, rng, 0, 1)
	orig := x.Clone()
	FakeQuantizeActivations(x, 8)
	if x.L2Distance(orig) > 0.05 {
		t.Fatalf("8-bit activation quantization too lossy: %g", x.L2Distance(orig))
	}
}

func TestActBitsAppliedOnlyAtInference(t *testing.T) {
	rng := tensor.NewRNG(9)
	l := NewDense("d", 4, 4)
	tensor.FillNormal(l.W.Value, rng, 1)
	l.ActBits = 1
	x := tensor.New(1, 4)
	tensor.FillUniform(x, rng, 0, 1)
	trainOut := l.Forward(x, true)
	inferOut := l.Forward(x, false)
	if trainOut.L2Distance(inferOut) == 0 {
		t.Fatal("1-bit ActBits should alter inference output vs training output")
	}
}

// TestConv2DBadGeometryPanicNamesLayer: an invalid runtime geometry
// (kernel larger than the padded input) must panic with the layer's
// name, like every other Conv2D panic — not the bare geometry error.
func TestConv2DBadGeometryPanicNamesLayer(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on invalid conv geometry")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, `Conv2D "tiny-conv"`) {
			t.Fatalf("panic %q does not name the layer", msg)
		}
	}()
	l := NewConv2D("tiny-conv", 1, 1, 5, 5, 1, 0)
	l.Forward(tensor.New(1, 1, 3, 3), false) // 3x3 input cannot fit a 5x5 kernel
}
