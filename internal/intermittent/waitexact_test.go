package intermittent

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/tensor"
)

// refEngine replicates the pre-fusion stepping engine exactly: the
// second-by-second harvest loop and the 1-second wait loop, span by
// span. The fused kernels (Storage.HarvestPairsUntil / DrainZero) claim
// bit-identity with this decomposition — including the rounded clock
// chain (t+1.0 is not exact for clocks carrying a full 53-bit fraction)
// — and this file is the differential gate for that claim.
type refEngine struct {
	store              *energy.Storage
	trace              *energy.Trace
	now                float64
	harvested, storedE float64
}

func (r *refEngine) harvestStep(dt float64) {
	if dt <= 0 {
		return
	}
	t := r.now
	end := r.now + dt
	for t < end {
		sec := int(t)
		next := float64(sec + 1)
		if next > end {
			next = end
		}
		span := next - t
		mj := r.trace.At(sec) * span
		r.harvested += mj
		r.storedE += r.store.Harvest(mj, span)
		t = next
	}
	r.now = end
}

func (r *refEngine) waitForEnergy(mj, deadline float64) bool {
	limit := float64(r.trace.Duration())
	if deadline > 0 && deadline < limit {
		limit = deadline
	}
	for r.now < limit {
		if r.store.On() && r.store.Available() >= mj {
			return true
		}
		step := 1.0
		if r.now+step > limit {
			step = limit - r.now
		}
		if step <= 0 {
			break
		}
		r.harvestStep(step)
	}
	return r.store.On() && r.store.Available() >= mj
}

// TestWaitForEnergyBitIdenticalToStepping fuzzes WaitForEnergy against
// the reference stepper: random traces (including exact-zero stretches
// that trigger the drain fast path), full-precision fractional starting
// clocks, and random targets/deadlines. Every observable — result,
// clock, buffer level, on-state, energy ledgers — must match bit for
// bit.
func TestWaitForEnergyBitIdenticalToStepping(t *testing.T) {
	rng := tensor.NewRNG(0xbeef)
	for trial := 0; trial < 300; trial++ {
		// Random trace with zero runs and tiny powers.
		dur := 50 + int(rng.Float64()*200)
		power := make([]float64, dur)
		for i := range power {
			switch {
			case rng.Float64() < 0.4:
				power[i] = 0 // exact zero: drain fast path
			default:
				power[i] = rng.Float64() * 0.05
			}
		}
		trace := &energy.Trace{Power: power}

		// Half the trials use the TurnOnMJ == BrownOutMJ edge, where a
		// browned-out buffer sits exactly at the turn-on threshold and
		// even a zero-power Harvest step re-fires the turn-on transition
		// — the stepper behavior DrainZero must reproduce.
		turnOn, brownOut := 0.5, 0.05
		if trial%2 == 1 {
			turnOn, brownOut = 0.05, 0.05
		}
		mkStore := func() *energy.Storage {
			return &energy.Storage{
				CapacityMJ: 4, TurnOnMJ: turnOn, BrownOutMJ: brownOut,
				ChargeEfficiency: 0.9, LeakMWPerS: 0.0002,
			}
		}
		engStore := mkStore()
		eng, err := New(mcu.MSP432(), engStore, trace)
		if err != nil {
			t.Fatal(err)
		}
		refStore := mkStore()
		refStore.SetLevel(refStore.TurnOnMJ)
		ref := &refEngine{store: refStore, trace: trace}

		// Drive both to the same full-precision fractional clock, then
		// issue the same waits.
		t0 := rng.Float64() * 3 // fractional, full 53-bit mantissa
		eng.AdvanceTo(t0)
		ref.harvestStep(t0 - ref.now)

		for w := 0; w < 4; w++ {
			target := 0.2 + rng.Float64()*3
			deadline := eng.Now() + rng.Float64()*float64(dur)
			got := eng.WaitForEnergy(target, deadline)
			want := ref.waitForEnergy(target, deadline)
			if got != want {
				t.Fatalf("trial %d wait %d: result %v vs %v", trial, w, got, want)
			}
			if eng.Now() != ref.now {
				t.Fatalf("trial %d wait %d: clock %x vs %x", trial, w, eng.Now(), ref.now)
			}
			if engStore.Level() != refStore.Level() || engStore.On() != refStore.On() {
				t.Fatalf("trial %d wait %d: level %x/%v vs %x/%v",
					trial, w, engStore.Level(), engStore.On(), refStore.Level(), refStore.On())
			}
			st := eng.Stats()
			if st.HarvestedMJ != ref.harvested || st.StoredMJ != ref.storedE {
				t.Fatalf("trial %d wait %d: ledgers (%x, %x) vs (%x, %x)",
					trial, w, st.HarvestedMJ, st.StoredMJ, ref.harvested, ref.storedE)
			}
			// Advance both across a fractional gap (spending a little as
			// a task would) so later waits start from a messy clock.
			spend := rng.Float64() * 0.2
			engStore.Spend(spend)
			refStore.Spend(spend)
			next := eng.Now() + rng.Float64()*5
			eng.AdvanceTo(next)
			ref.harvestStep(next - ref.now)
			if math.IsNaN(eng.Now()) {
				t.Fatal("clock went NaN")
			}
		}
	}
}
