package intermittent

import (
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/mcu"
	"repro/internal/tensor"
)

// TestEngineInvariantsUnderRandomWorkloads drives the engine with random
// traces and task mixes and checks the global invariants that must hold
// no matter what: time never rewinds, the buffer stays within bounds,
// and the energy ledger balances (nothing spent that was never stored).
func TestEngineInvariantsUnderRandomWorkloads(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		// Random trace: 200–1200 s of erratic power.
		dur := 200 + rng.Intn(1000)
		trace := &energy.Trace{Power: make([]float64, dur)}
		for i := range trace.Power {
			trace.Power[i] = rng.Float64() * 0.5
		}
		store := &energy.Storage{
			CapacityMJ:       1 + 9*rng.Float64(),
			BrownOutMJ:       0.05,
			ChargeEfficiency: 0.5 + 0.5*rng.Float64(),
			LeakMWPerS:       0.001 * rng.Float64(),
		}
		store.TurnOnMJ = store.BrownOutMJ + (store.CapacityMJ-store.BrownOutMJ)*0.2
		eng, err := New(mcu.MSP432(), store, trace)
		if err != nil {
			return false
		}

		initial := store.Level()
		prevNow := eng.Now()
		for op := 0; op < 30 && !eng.Ended(); op++ {
			switch rng.Intn(4) {
			case 0:
				eng.AdvanceTo(eng.Now() + float64(rng.Intn(50)))
			case 1:
				eng.RunAtomic(int64(rng.Intn(2_000_000)) + 1)
			case 2:
				eng.RunToCompletion(int64(rng.Intn(3_000_000)) + 1)
			default:
				eng.WaitForEnergy(rng.Float64()*store.CapacityMJ, eng.Now()+30)
			}
			if eng.Now() < prevNow {
				t.Logf("time rewound: %v → %v", prevNow, eng.Now())
				return false
			}
			prevNow = eng.Now()
			if store.Level() < 0 || store.Level() > store.CapacityMJ+1e-9 {
				t.Logf("buffer out of bounds: %v", store.Level())
				return false
			}
		}
		s := eng.Stats()
		// Ledger: all spending is covered by stored energy plus the
		// initial charge.
		spent := s.ComputeMJ + s.CheckpointMJ + store.Level()
		if spent > s.StoredMJ+initial+1e-6 {
			t.Logf("ledger violated: spent+level %v > stored %v + initial %v", spent, s.StoredMJ, initial)
			return false
		}
		// Stored never exceeds efficiency-scaled harvest.
		if s.StoredMJ > s.HarvestedMJ*store.ChargeEfficiency+1e-6 {
			t.Logf("stored %v exceeds efficiency-limited harvest", s.StoredMJ)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedInvariants drives RunSegmented with random segment chains.
func TestSegmentedInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed | 1)
		trace := energy.ConstantTrace(2000+rng.Intn(3000), 0.2+rng.Float64())
		store := energy.DefaultStorage()
		eng, err := New(mcu.MSP432(), store, trace)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(6)
		var tasks []SegmentTask
		var totalFlops int64
		for i := 0; i < n; i++ {
			f := int64(rng.Intn(1_500_000)) + 1
			totalFlops += f
			tasks = append(tasks, SegmentTask{Name: "s", FLOPs: f, CheckpointAfter: true})
		}
		res, ok := eng.RunSegmented(tasks)
		if !ok {
			// Legitimate only if the trace genuinely ended.
			return eng.Ended()
		}
		if res.SegmentsRun != n {
			return false
		}
		want := mcu.MSP432().ComputeEnergyMJ(totalFlops)
		return res.EnergyMJ > want*0.95 && res.EnergyMJ < want*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
