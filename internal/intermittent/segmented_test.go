package intermittent

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/mcu"
)

func segTasks(flops ...int64) []SegmentTask {
	var ts []SegmentTask
	for i, f := range flops {
		ts = append(ts, SegmentTask{
			Name:            string(rune('a' + i)),
			FLOPs:           f,
			CheckpointAfter: true,
		})
	}
	return ts
}

func TestRunSegmentedSingleCycle(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(1000, 1))
	e.Store.SetLevel(8)
	res, ok := e.RunSegmented(segTasks(500_000, 500_000, 500_000))
	if !ok || !res.Completed {
		t.Fatal("segmented chain failed")
	}
	if res.SegmentsRun != 3 {
		t.Fatalf("segments run %d", res.SegmentsRun)
	}
	if res.PowerCycles != 0 || res.Checkpoints != 0 {
		t.Fatalf("unexpected suspension: %d cycles, %d checkpoints", res.PowerCycles, res.Checkpoints)
	}
	// 1.5 MFLOPs × 1.5 mJ/M = 2.25 mJ.
	if math.Abs(res.EnergyMJ-2.25) > 0.01 {
		t.Fatalf("energy %v", res.EnergyMJ)
	}
}

func TestRunSegmentedSpansPowerCycles(t *testing.T) {
	// Each segment costs 3 mJ; the 10 mJ buffer starts at 4 mJ and the
	// trace trickles, so the chain must suspend at boundaries.
	e := newEngine(t, energy.ConstantTrace(100000, 0.5))
	e.Store.SetLevel(4)
	res, ok := e.RunSegmented(segTasks(2_000_000, 2_000_000, 2_000_000))
	if !ok {
		t.Fatal("segmented chain failed")
	}
	if res.PowerCycles == 0 {
		t.Fatal("expected suspensions")
	}
	if res.Checkpoints == 0 {
		t.Fatal("expected boundary checkpoints")
	}
	if res.OverheadMJ <= 0 {
		t.Fatal("checkpoint/restore overhead must be charged")
	}
	if math.Abs(res.EnergyMJ-9.0) > 0.05 {
		t.Fatalf("compute energy %v, want 9", res.EnergyMJ)
	}
}

func TestRunSegmentedFailsAtTraceEnd(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(30, 0.001))
	e.Store.SetLevel(1)
	res, ok := e.RunSegmented(segTasks(2_000_000, 2_000_000))
	if ok {
		t.Fatal("impossible chain succeeded")
	}
	if res.SegmentsRun > 1 {
		t.Fatalf("ran %d segments with almost no energy", res.SegmentsRun)
	}
}

func TestRunSegmentedMatchesExitDecomposition(t *testing.T) {
	// Executing the three exit-path segments of the compressed LeNet-EE
	// costs the same energy as one atomic run of the summed FLOPs.
	flops := []int64{130_000, 385_000, 510_000}
	var total int64
	for _, f := range flops {
		total += f
	}

	e1 := newEngine(t, energy.ConstantTrace(1000, 1))
	e1.Store.SetLevel(9)
	segRes, ok := e1.RunSegmented(segTasks(flops...))
	if !ok {
		t.Fatal("segmented failed")
	}

	store2 := energy.DefaultStorage()
	e2, err := New(mcu.MSP432(), store2, energy.ConstantTrace(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	e2.Store.SetLevel(9)
	atomRes, ok := e2.RunAtomic(total)
	if !ok {
		t.Fatal("atomic failed")
	}
	if math.Abs(segRes.EnergyMJ-atomRes.EnergyMJ) > 0.01 {
		t.Fatalf("segmented %v vs atomic %v compute energy", segRes.EnergyMJ, atomRes.EnergyMJ)
	}
}
