// Package intermittent is the discrete-event execution engine for
// intermittently powered devices: it couples the MCU cost model, the
// capacitor energy store, and a harvesting trace, and executes compute
// tasks under two disciplines:
//
//   - RunAtomic: a task whose energy cost fits in the current buffer,
//     executed within one power cycle — how the paper's system runs an
//     inference to a chosen exit.
//   - RunToCompletion: a task that spans as many power cycles as needed,
//     paying FRAM checkpoint/restore overheads at every power failure —
//     how the SONIC-style baselines finish a fixed full-network
//     inference (§II's "forced to pause ... wait until enough energy is
//     harvested").
//
// The repro note for this paper warns that a garbage-collected runtime
// cannot model real power failure, so power cycles are simulated
// explicitly here as energy-ledger events rather than by crashing the
// process; every joule is conserved and auditable via Stats.
package intermittent

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mcu"
)

// Engine advances simulated time, harvesting energy from the trace and
// spending it on compute tasks.
type Engine struct {
	Device *mcu.Device
	Store  *energy.Storage
	Trace  *energy.Trace

	// now is the current simulation time in seconds.
	now float64
	// stats ledger.
	stats Stats

	// slice is the compute quantum in seconds for interleaving
	// harvesting with computation.
	slice float64
}

// Stats is the engine's cumulative energy/time ledger.
type Stats struct {
	HarvestedMJ    float64 // energy offered by the trace (pre-efficiency)
	StoredMJ       float64 // energy actually stored
	ComputeMJ      float64 // energy spent on MACs
	CheckpointMJ   float64 // energy spent checkpointing/restoring
	PowerCycles    int     // number of brown-out → recharge cycles
	TasksCompleted int
	TasksAborted   int
}

// New builds an engine at t=0. The store starts at the turn-on threshold
// so the device boots immediately (warm start); call Store.SetLevel to
// change that.
func New(dev *mcu.Device, store *energy.Storage, trace *energy.Trace) (*Engine, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := store.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Duration() == 0 {
		return nil, fmt.Errorf("intermittent: empty trace")
	}
	store.SetLevel(store.TurnOnMJ)
	return &Engine{
		Device: dev,
		Store:  store,
		Trace:  trace,
		slice:  0.1,
	}, nil
}

// Now returns the current simulation time (seconds).
func (e *Engine) Now() float64 { return e.now }

// Stats returns the cumulative ledger.
func (e *Engine) Stats() Stats { return e.stats }

// Ended reports whether simulated time has run past the trace.
func (e *Engine) Ended() bool { return e.now >= float64(e.Trace.Duration()) }

// harvestStep harvests over [e.now, e.now+dt), advancing time.
func (e *Engine) harvestStep(dt float64) {
	if dt <= 0 {
		return
	}
	// Integrate trace power over the interval second-by-second.
	t := e.now
	end := e.now + dt
	for t < end {
		sec := int(t)
		next := float64(sec + 1)
		if next > end {
			next = end
		}
		span := next - t
		mj := e.Trace.At(sec) * span
		e.stats.HarvestedMJ += mj
		e.stats.StoredMJ += e.Store.Harvest(mj, span)
		t = next
	}
	e.now = end
}

// AdvanceTo moves simulation time forward to t (seconds), harvesting
// along the way. Requests in the past are no-ops.
func (e *Engine) AdvanceTo(t float64) {
	if t > e.now {
		e.harvestStep(t - e.now)
	}
}

// RecentPower returns the mean harvesting power (mW) over the trailing
// window seconds — the "charging efficiency" observable the runtime
// Q-learning uses as state.
func (e *Engine) RecentPower(window int) float64 {
	if window <= 0 {
		window = 60
	}
	end := int(e.now)
	start := end - window
	if start < 0 {
		start = 0
	}
	if end <= start {
		return e.Trace.At(end)
	}
	var sum float64
	for t := start; t < end; t++ {
		sum += e.Trace.At(t)
	}
	return sum / float64(end-start)
}

// WaitForEnergy advances time until the buffer has at least mj available
// (and the device is on), or deadline (seconds) is reached, or the trace
// ends. It reports whether the energy target was met.
func (e *Engine) WaitForEnergy(mj float64, deadline float64) bool {
	limit := float64(e.Trace.Duration())
	if deadline > 0 && deadline < limit {
		limit = deadline
	}
	for e.now < limit {
		if e.Store.On() && e.Store.Available() >= mj {
			return true
		}
		step := e.slice * 10 // 1 s waiting granularity
		if e.now+step > limit {
			step = limit - e.now
		}
		if step <= 0 {
			break
		}
		e.harvestStep(step)
	}
	return e.Store.On() && e.Store.Available() >= mj
}

// TaskResult describes one executed task.
type TaskResult struct {
	// StartedAt/FinishedAt are simulation timestamps (seconds).
	StartedAt  float64
	FinishedAt float64
	// EnergyMJ is the compute energy spent (excluding checkpoints).
	EnergyMJ float64
	// OverheadMJ is checkpoint/restore energy spent.
	OverheadMJ float64
	// PowerCycles is the number of power failures endured.
	PowerCycles int
	// Completed is false if the trace ended before the task finished.
	Completed bool
}

// RunAtomic executes a task of the given MAC count entirely within the
// current power cycle. The caller must have verified affordability
// (EnergyFor(flops) ≤ Store.Available()); if the buffer cannot cover the
// task the engine aborts it, reports ok=false, and the partially spent
// energy is lost — mirroring a mid-inference power failure without a
// checkpoint.
func (e *Engine) RunAtomic(flops int64) (TaskResult, bool) {
	res := TaskResult{StartedAt: e.now}
	cost := e.Device.ComputeEnergyMJ(flops)
	dur := e.Device.ComputeSeconds(flops)
	if !e.Store.On() || e.Store.Available() < cost {
		e.Store.Spend(cost) // drains to brown-out floor
		e.stats.TasksAborted++
		res.FinishedAt = e.now
		return res, false
	}
	e.Store.Spend(cost)
	e.stats.ComputeMJ += cost
	e.harvestStep(dur)
	e.stats.TasksCompleted++
	res.FinishedAt = e.now
	res.EnergyMJ = cost
	res.Completed = true
	return res, true
}

// EnergyFor returns the energy cost (mJ) of a MAC count on this device.
func (e *Engine) EnergyFor(flops int64) float64 {
	return e.Device.ComputeEnergyMJ(flops)
}

// RunToCompletion executes a task of the given MAC count across as many
// power cycles as necessary (SONIC-style). Progress is preserved across
// failures via checkpoint/restore, each costing energy and time. Returns
// ok=false only if the trace ends first.
func (e *Engine) RunToCompletion(flops int64) (TaskResult, bool) {
	res := TaskResult{StartedAt: e.now}
	remaining := float64(flops)
	flopsPerSlice := e.Device.MFLOPSPerSecond * 1e6 * e.slice
	needRestore := false
	limit := float64(e.Trace.Duration())

	for remaining > 0 {
		if e.now >= limit {
			e.stats.TasksAborted++
			res.FinishedAt = e.now
			return res, false
		}
		// Execute one slice (or the remainder).
		sliceFlops := flopsPerSlice
		if sliceFlops > remaining {
			sliceFlops = remaining
		}
		cost := e.Device.ComputeEnergyMJ(int64(sliceFlops + 0.5))
		// The buffer must cover the slice, its checkpoint reserve, and
		// a restore if one is pending — otherwise no forward progress
		// is possible this cycle. Waiting for this level (not merely
		// the turn-on threshold) guarantees liveness even when the
		// turn-on window is smaller than one compute slice.
		need := cost + e.Device.CheckpointEnergyMJ
		if needRestore {
			need += e.Device.RestoreEnergyMJ
		}
		if !e.Store.On() || e.Store.Available() < need {
			if e.Store.On() && e.Store.Available() >= e.Device.CheckpointEnergyMJ {
				// Power failure imminent: checkpoint and brown out.
				e.Store.Spend(e.Device.CheckpointEnergyMJ)
				e.stats.CheckpointMJ += e.Device.CheckpointEnergyMJ
				res.OverheadMJ += e.Device.CheckpointEnergyMJ
				e.harvestStep(e.Device.CheckpointSeconds)
				e.Store.SetLevel(e.Store.BrownOutMJ)
				e.stats.PowerCycles++
				res.PowerCycles++
				needRestore = true
				need += e.Device.RestoreEnergyMJ - e.Device.CheckpointEnergyMJ
			}
			if !e.WaitForEnergy(need, limit) {
				e.stats.TasksAborted++
				res.FinishedAt = e.now
				return res, false
			}
			continue
		}
		if needRestore {
			if !e.spendOverhead(e.Device.RestoreEnergyMJ, e.Device.RestoreSeconds, &res) {
				continue // browned out paying restore; recharge and retry
			}
			needRestore = false
		}
		e.Store.Spend(cost)
		e.stats.ComputeMJ += cost
		res.EnergyMJ += cost
		dur := sliceFlops / (e.Device.MFLOPSPerSecond * 1e6)
		e.harvestStep(dur)
		remaining -= sliceFlops
	}
	e.stats.TasksCompleted++
	res.FinishedAt = e.now
	res.Completed = true
	return res, true
}

// spendOverhead pays a checkpoint/restore cost; returns false if it
// browned out the device instead.
func (e *Engine) spendOverhead(mj, sec float64, res *TaskResult) bool {
	if e.Store.Available() < mj {
		e.Store.Spend(mj)
		e.stats.PowerCycles++
		res.PowerCycles++
		return false
	}
	e.Store.Spend(mj)
	e.stats.CheckpointMJ += mj
	res.OverheadMJ += mj
	e.harvestStep(sec)
	return true
}
