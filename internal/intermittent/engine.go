// Package intermittent is the discrete-event execution engine for
// intermittently powered devices: it couples the MCU cost model, the
// capacitor energy store, and a harvesting trace, and executes compute
// tasks under two disciplines:
//
//   - RunAtomic: a task whose energy cost fits in the current buffer,
//     executed within one power cycle — how the paper's system runs an
//     inference to a chosen exit.
//   - RunToCompletion: a task that spans as many power cycles as needed,
//     paying FRAM checkpoint/restore overheads at every power failure —
//     how the SONIC-style baselines finish a fixed full-network
//     inference (§II's "forced to pause ... wait until enough energy is
//     harvested").
//
// The repro note for this paper warns that a garbage-collected runtime
// cannot model real power failure, so power cycles are simulated
// explicitly here as energy-ledger events rather than by crashing the
// process; every joule is conserved and auditable via Stats.
package intermittent

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/mcu"
)

// Engine advances simulated time, harvesting energy from the trace and
// spending it on compute tasks.
type Engine struct {
	Device *mcu.Device
	Store  *energy.Storage
	Trace  *energy.Trace

	// now is the current simulation time in seconds.
	now float64
	// stats ledger.
	stats Stats

	// slice is the compute quantum in seconds for interleaving
	// harvesting with computation.
	slice float64
}

// Stats is the engine's cumulative energy/time ledger.
type Stats struct {
	HarvestedMJ    float64 // energy offered by the trace (pre-efficiency)
	StoredMJ       float64 // energy actually stored
	ComputeMJ      float64 // energy spent on MACs
	CheckpointMJ   float64 // energy spent checkpointing/restoring
	PowerCycles    int     // number of brown-out → recharge cycles
	TasksCompleted int
	TasksAborted   int
}

// New builds an engine at t=0. The store starts at the turn-on threshold
// so the device boots immediately (warm start); call Store.SetLevel to
// change that.
func New(dev *mcu.Device, store *energy.Storage, trace *energy.Trace) (*Engine, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := store.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || trace.Duration() == 0 {
		return nil, fmt.Errorf("intermittent: empty trace")
	}
	store.SetLevel(store.TurnOnMJ)
	return &Engine{
		Device: dev,
		Store:  store,
		Trace:  trace,
		slice:  0.1,
	}, nil
}

// Reset re-points the engine at a device/store/trace triple and rewinds
// it to t=0 with a zeroed ledger and the store at its turn-on level —
// the same state New leaves a fresh engine in, minus the validation.
// It exists for arena-style callers (the fleet simulator) that run one
// engine value through millions of episodes: the caller validates the
// device, storage template, and traces once per population and Reset
// itself stays allocation-free.
//
//ehlint:hotpath
func (e *Engine) Reset(dev *mcu.Device, store *energy.Storage, trace *energy.Trace) {
	e.Device = dev
	e.Store = store
	e.Trace = trace
	e.now = 0
	e.stats = Stats{}
	e.slice = 0.1
	store.SetLevel(store.TurnOnMJ)
}

// Now returns the current simulation time (seconds).
func (e *Engine) Now() float64 { return e.now }

// Stats returns the cumulative ledger.
func (e *Engine) Stats() Stats { return e.stats }

// Ended reports whether simulated time has run past the trace.
func (e *Engine) Ended() bool { return e.now >= float64(e.Trace.Duration()) }

// harvestStep harvests over [e.now, e.now+dt), advancing time. The
// per-second integration is split into a leading fractional step, a
// fused whole-second run (Storage.HarvestSeconds — the hot path), and a
// generic tail for the trailing fraction and any post-trace seconds.
// Every float operation happens in the same order as the original
// boundary-by-boundary loop, so results are bit-identical; only the loop
// overhead (index conversions, bounds checks, field loads) is gone.
//
//ehlint:hotpath
func (e *Engine) harvestStep(dt float64) {
	if dt <= 0 {
		return
	}
	t := e.now
	end := e.now + dt
	power := e.Trace.Power
	store := e.Store
	h, st := e.stats.HarvestedMJ, e.stats.StoredMJ

	// Leading partial second, if t is not on a second boundary. This is
	// the dominant shape during energy waits: a fractional clock steps
	// one second at a time, so every step is two partial spans.
	if sec := int(t); float64(sec) < t {
		next := float64(sec + 1)
		if next > end {
			next = end
		}
		span := next - t
		var p float64
		if sec < len(power) {
			p = power[sec]
		}
		mj := p * span
		h += mj
		st += store.Harvest(mj, span)
		t = next
	}
	// Whole in-range seconds: p×1.0 ≡ p and leak×1.0 ≡ leak, so the
	// fused loop reproduces Harvest(p, 1) exactly.
	if t < end {
		lo := int(t)
		hi := int(end)
		if hi > len(power) {
			hi = len(power)
		}
		if hi > lo {
			h, st = store.HarvestSeconds(power[lo:hi], h, st)
			t = float64(hi)
		}
	}
	// Trailing fraction and post-trace seconds (the trace yields 0
	// there, but leakage still drains the buffer).
	for t < end {
		sec := int(t)
		next := float64(sec + 1)
		if next > end {
			next = end
		}
		span := next - t
		var p float64
		if sec < len(power) {
			p = power[sec]
		}
		mj := p * span
		h += mj
		st += store.Harvest(mj, span)
		t = next
	}
	e.stats.HarvestedMJ, e.stats.StoredMJ = h, st
	e.now = end
}

// AdvanceTo moves simulation time forward to t (seconds), harvesting
// along the way. Requests in the past are no-ops.
func (e *Engine) AdvanceTo(t float64) {
	if t > e.now {
		e.harvestStep(t - e.now)
	}
}

// RecentPower returns the mean harvesting power (mW) over the trailing
// window seconds — the "charging efficiency" observable the runtime
// Q-learning uses as state.
func (e *Engine) RecentPower(window int) float64 {
	if window <= 0 {
		window = 60
	}
	end := int(e.now)
	start := end - window
	if start < 0 {
		start = 0
	}
	if end <= start {
		return e.Trace.At(end)
	}
	// Sum the window over the raw slice (bounds-check-eliminated, same
	// left-to-right order as summing Trace.At calls; out-of-range seconds
	// contribute zero and are skipped).
	power := e.Trace.Power
	hi := end
	if hi > len(power) {
		hi = len(power)
	}
	var sum float64
	if start < hi {
		for _, p := range power[start:hi] {
			sum += p
		}
	}
	return sum / float64(end-start)
}

// WaitForEnergy advances time until the buffer has at least mj available
// (and the device is on), or deadline (seconds) is reached, or the trace
// ends. It reports whether the energy target was met.
//
//ehlint:hotpath
func (e *Engine) WaitForEnergy(mj float64, deadline float64) bool {
	limit := float64(e.Trace.Duration())
	if deadline > 0 && deadline < limit {
		limit = deadline
	}
	power := e.Trace.Power
	for e.now < limit {
		if e.Store.On() && e.Store.Available() >= mj {
			return true
		}
		// Zero-power stretch (kinetic traces between bursts, post-trace
		// tails): the buffer can only drain, so with a positive target
		// the wait condition provably stays false until power returns
		// (a turn-on can fire only at the TurnOnMJ == BrownOutMJ edge,
		// where available energy is still ≤ 0) — those whole steps run
		// without per-second re-checks, and an already-empty buffer
		// skips them outright. Results are bit-identical to stepping.
		// The inline power probe keeps this free on never-zero (solar)
		// traces.
		if sec := int(e.now); mj > 0 && (sec >= len(power) || power[sec] == 0) {
			if n := e.zeroWaitSteps(limit); n > 0 {
				now, st := e.Store.DrainZero(n, int(e.now), e.now, limit, e.stats.StoredMJ)
				if now > e.now {
					e.now, e.stats.StoredMJ = now, st
					continue
				}
				// Limit-clipped before one full step: generic path below.
			}
		}
		// Harvesting wait: run as many full 1-second steps as fit before
		// the limit through the storage's fused kernel (identical span
		// decomposition, clock chain, and check schedule — no per-span
		// call overhead).
		if mj > 0 {
			t := e.now
			max := int(limit - t)
			sec := int(t)
			if avail := len(power) - sec - 1; max > avail {
				max = avail // step k reads power[sec+k] and power[sec+k+1]
			}
			if max > 0 {
				steps, now, h, st, met := e.Store.HarvestPairsUntil(
					power[sec:], max, sec, t, limit, mj, e.stats.HarvestedMJ, e.stats.StoredMJ)
				if steps > 0 {
					e.stats.HarvestedMJ, e.stats.StoredMJ = h, st
					e.now = now
					if met {
						return true
					}
					continue
				}
				// Limit-clipped before one full step: generic path below.
			}
		}
		step := e.slice * 10 // 1 s waiting granularity
		if e.now+step > limit {
			step = limit - e.now
		}
		if step <= 0 {
			break
		}
		e.harvestStep(step)
	}
	return e.Store.On() && e.Store.Available() >= mj
}

// zeroWaitSteps returns how many full 1-second wait steps from e.now
// touch only zero-power trace seconds and fit entirely before limit.
//
//ehlint:hotpath
func (e *Engine) zeroWaitSteps(limit float64) int {
	t := e.now
	max := int(limit - t) // full 1.0 steps that fit before limit
	if max <= 0 {
		return 0
	}
	power := e.Trace.Power
	sec := int(t)
	frac := float64(sec) < t
	// Step k covers second sec+k and, when t is fractional, also
	// sec+k+1 — all touched seconds must be zero-power (seconds past
	// the trace end are zero by definition).
	need := max
	if frac {
		need++
	}
	zeros := 0
	for s := sec; s < sec+need; s++ {
		if s < len(power) && power[s] != 0 {
			break
		}
		zeros++
	}
	n := zeros
	if frac {
		n--
	}
	if n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	return n
}

// TaskResult describes one executed task.
type TaskResult struct {
	// StartedAt/FinishedAt are simulation timestamps (seconds).
	StartedAt  float64
	FinishedAt float64
	// EnergyMJ is the compute energy spent (excluding checkpoints).
	EnergyMJ float64
	// OverheadMJ is checkpoint/restore energy spent.
	OverheadMJ float64
	// PowerCycles is the number of power failures endured.
	PowerCycles int
	// Completed is false if the trace ended before the task finished.
	Completed bool
}

// RunAtomic executes a task of the given MAC count entirely within the
// current power cycle. The caller must have verified affordability
// (EnergyFor(flops) ≤ Store.Available()); if the buffer cannot cover the
// task the engine aborts it, reports ok=false, and the partially spent
// energy is lost — mirroring a mid-inference power failure without a
// checkpoint.
//
//ehlint:hotpath
func (e *Engine) RunAtomic(flops int64) (TaskResult, bool) {
	res := TaskResult{StartedAt: e.now}
	cost := e.Device.ComputeEnergyMJ(flops)
	dur := e.Device.ComputeSeconds(flops)
	if !e.Store.On() || e.Store.Available() < cost {
		e.Store.Spend(cost) // drains to brown-out floor
		e.stats.TasksAborted++
		res.FinishedAt = e.now
		return res, false
	}
	e.Store.Spend(cost)
	e.stats.ComputeMJ += cost
	e.harvestStep(dur)
	e.stats.TasksCompleted++
	res.FinishedAt = e.now
	res.EnergyMJ = cost
	res.Completed = true
	return res, true
}

// EnergyFor returns the energy cost (mJ) of a MAC count on this device.
func (e *Engine) EnergyFor(flops int64) float64 {
	return e.Device.ComputeEnergyMJ(flops)
}

// RunToCompletion executes a task of the given MAC count across as many
// power cycles as necessary (SONIC-style). Progress is preserved across
// failures via checkpoint/restore, each costing energy and time. Returns
// ok=false only if the trace ends first.
func (e *Engine) RunToCompletion(flops int64) (TaskResult, bool) {
	res := TaskResult{StartedAt: e.now}
	remaining := float64(flops)
	flopsPerSlice := e.Device.MFLOPSPerSecond * 1e6 * e.slice
	needRestore := false
	limit := float64(e.Trace.Duration())

	for remaining > 0 {
		if e.now >= limit {
			e.stats.TasksAborted++
			res.FinishedAt = e.now
			return res, false
		}
		// Execute one slice (or the remainder).
		sliceFlops := flopsPerSlice
		if sliceFlops > remaining {
			sliceFlops = remaining
		}
		cost := e.Device.ComputeEnergyMJ(int64(sliceFlops + 0.5))
		// The buffer must cover the slice, its checkpoint reserve, and
		// a restore if one is pending — otherwise no forward progress
		// is possible this cycle. Waiting for this level (not merely
		// the turn-on threshold) guarantees liveness even when the
		// turn-on window is smaller than one compute slice.
		need := cost + e.Device.CheckpointEnergyMJ
		if needRestore {
			need += e.Device.RestoreEnergyMJ
		}
		if !e.Store.On() || e.Store.Available() < need {
			if e.Store.On() && e.Store.Available() >= e.Device.CheckpointEnergyMJ {
				// Power failure imminent: checkpoint and brown out.
				e.Store.Spend(e.Device.CheckpointEnergyMJ)
				e.stats.CheckpointMJ += e.Device.CheckpointEnergyMJ
				res.OverheadMJ += e.Device.CheckpointEnergyMJ
				e.harvestStep(e.Device.CheckpointSeconds)
				e.Store.SetLevel(e.Store.BrownOutMJ)
				e.stats.PowerCycles++
				res.PowerCycles++
				needRestore = true
				need += e.Device.RestoreEnergyMJ - e.Device.CheckpointEnergyMJ
			}
			if !e.WaitForEnergy(need, limit) {
				e.stats.TasksAborted++
				res.FinishedAt = e.now
				return res, false
			}
			continue
		}
		if needRestore {
			if !e.spendOverhead(e.Device.RestoreEnergyMJ, e.Device.RestoreSeconds, &res) {
				continue // browned out paying restore; recharge and retry
			}
			needRestore = false
		}
		e.Store.Spend(cost)
		e.stats.ComputeMJ += cost
		res.EnergyMJ += cost
		dur := sliceFlops / (e.Device.MFLOPSPerSecond * 1e6)
		e.harvestStep(dur)
		remaining -= sliceFlops
	}
	e.stats.TasksCompleted++
	res.FinishedAt = e.now
	res.Completed = true
	return res, true
}

// spendOverhead pays a checkpoint/restore cost; returns false if it
// browned out the device instead.
func (e *Engine) spendOverhead(mj, sec float64, res *TaskResult) bool {
	if e.Store.Available() < mj {
		e.Store.Spend(mj)
		e.stats.PowerCycles++
		res.PowerCycles++
		return false
	}
	e.Store.Spend(mj)
	e.stats.CheckpointMJ += mj
	res.OverheadMJ += mj
	e.harvestStep(sec)
	return true
}
