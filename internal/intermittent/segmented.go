package intermittent

import "fmt"

// SegmentTask is one atomically executable slice of an inference (a
// trunk segment or branch of the multi-exit network). A real deployment
// checkpoints between segments — the activation at a segment boundary is
// exactly the paper's resumable State written to FRAM.
type SegmentTask struct {
	// Name for diagnostics.
	Name string
	// FLOPs is the segment's MAC count.
	FLOPs int64
	// CheckpointAfter indicates the segment boundary state should be
	// persisted (costing checkpoint energy/time) when execution
	// continues in a later power cycle.
	CheckpointAfter bool
}

// SegmentedResult describes a segmented execution.
type SegmentedResult struct {
	TaskResult
	// SegmentsRun is how many segments completed.
	SegmentsRun int
	// Checkpoints is how many boundary checkpoints were written.
	Checkpoints int
}

// RunSegmented executes a chain of segment tasks. Each segment runs
// atomically within one power cycle (a segment's working set lives in
// SRAM and is lost at power failure), but the chain as a whole spans
// cycles: when the buffer cannot cover the next segment, the boundary
// state is checkpointed, the device sleeps until recharged, pays a
// restore, and continues with the next segment. This is the execution
// model for the paper's own system when an inference (or an incremental
// continuation) crosses power cycles — contrast with RunToCompletion,
// which checkpoints at arbitrary slice boundaries (SONIC-style task
// decomposition of a monolithic inference).
//
// Returns ok=false if the trace ends before the chain completes; the
// partial result reports how far execution got.
func (e *Engine) RunSegmented(tasks []SegmentTask) (SegmentedResult, bool) {
	res := SegmentedResult{TaskResult: TaskResult{StartedAt: e.now}}
	limit := float64(e.Trace.Duration())
	suspended := false

	for i, task := range tasks {
		if task.FLOPs < 0 {
			panic(fmt.Sprintf("intermittent: segment %q has negative FLOPs", task.Name))
		}
		cost := e.Device.ComputeEnergyMJ(task.FLOPs)
		// Reserve checkpoint energy unless this is the last segment.
		reserve := 0.0
		if i+1 < len(tasks) && task.CheckpointAfter {
			reserve = e.Device.CheckpointEnergyMJ
		}
		need := cost + reserve
		if suspended {
			need += e.Device.RestoreEnergyMJ
		}

		if !e.Store.On() || e.Store.Available() < need {
			// Suspend at the boundary: checkpoint (if not already
			// persisted), recharge, restore.
			if !suspended && i > 0 {
				prev := tasks[i-1]
				if prev.CheckpointAfter && e.Store.Available() >= e.Device.CheckpointEnergyMJ {
					e.Store.Spend(e.Device.CheckpointEnergyMJ)
					e.stats.CheckpointMJ += e.Device.CheckpointEnergyMJ
					res.OverheadMJ += e.Device.CheckpointEnergyMJ
					res.Checkpoints++
					e.harvestStep(e.Device.CheckpointSeconds)
				}
			}
			suspended = true
			e.stats.PowerCycles++
			res.PowerCycles++
			if !e.WaitForEnergy(cost+e.Device.RestoreEnergyMJ, limit) {
				e.stats.TasksAborted++
				res.FinishedAt = e.now
				return res, false
			}
		}
		if suspended {
			if i > 0 {
				e.Store.Spend(e.Device.RestoreEnergyMJ)
				e.stats.CheckpointMJ += e.Device.RestoreEnergyMJ
				res.OverheadMJ += e.Device.RestoreEnergyMJ
				e.harvestStep(e.Device.RestoreSeconds)
			}
			suspended = false
		}
		tr, ok := e.RunAtomic(task.FLOPs)
		if !ok {
			// Should not happen after the affordability wait; treat as
			// abort.
			res.FinishedAt = e.now
			return res, false
		}
		res.EnergyMJ += tr.EnergyMJ
		res.SegmentsRun++
	}
	res.FinishedAt = e.now
	res.Completed = true
	return res, true
}
