package intermittent

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/mcu"
)

func newEngine(t *testing.T, trace *energy.Trace) *Engine {
	t.Helper()
	store := energy.DefaultStorage()
	e, err := New(mcu.MSP432(), store, trace)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsEmptyTrace(t *testing.T) {
	if _, err := New(mcu.MSP432(), energy.DefaultStorage(), &energy.Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestAdvanceToHarvests(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(100, 2)) // 2 mW
	before := e.Store.Level()
	e.AdvanceTo(3)
	if e.Now() != 3 {
		t.Fatalf("now = %v", e.Now())
	}
	// 3 s × 2 mW × 0.7 efficiency − leak.
	gained := e.Store.Level() - before
	if math.Abs(gained-(3*2*0.7-3*0.001)) > 1e-6 {
		t.Fatalf("gained %v", gained)
	}
	if e.Stats().HarvestedMJ != 6 {
		t.Fatalf("harvested ledger %v", e.Stats().HarvestedMJ)
	}
}

func TestAdvanceToPastIsNoop(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(100, 1))
	e.AdvanceTo(5)
	e.AdvanceTo(2)
	if e.Now() != 5 {
		t.Fatal("AdvanceTo must not rewind")
	}
}

func TestRunAtomicSpendsAndAdvances(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(100, 0))
	e.Store.SetLevel(5)
	res, ok := e.RunAtomic(2_000_000) // 3 mJ, 1 s
	if !ok || !res.Completed {
		t.Fatal("affordable atomic task failed")
	}
	if math.Abs(res.EnergyMJ-3) > 1e-9 {
		t.Fatalf("energy %v", res.EnergyMJ)
	}
	if math.Abs(e.Now()-1) > 1e-9 {
		t.Fatalf("compute time %v, want 1 s at 2 MFLOP/s", e.Now())
	}
	if math.Abs(e.Store.Level()-2) > 0.01 {
		t.Fatalf("level after = %v", e.Store.Level())
	}
}

func TestRunAtomicUnaffordableAborts(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(100, 0))
	e.Store.SetLevel(1)
	_, ok := e.RunAtomic(2_000_000) // needs 3 mJ
	if ok {
		t.Fatal("unaffordable atomic task succeeded")
	}
	if e.Store.On() {
		t.Fatal("failed atomic task must brown out")
	}
	if e.Stats().TasksAborted != 1 {
		t.Fatal("abort not recorded")
	}
}

func TestWaitForEnergyReachesTarget(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(1000, 2)) // 1.4 mJ/s stored
	e.Store.SetLevel(0)
	if !e.WaitForEnergy(5, 0) {
		t.Fatal("energy target not reached")
	}
	if e.Store.Available() < 5 {
		t.Fatalf("available %v below target", e.Store.Available())
	}
}

func TestWaitForEnergyDeadline(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(1000, 0.01))
	e.Store.SetLevel(0)
	if e.WaitForEnergy(5, 10) {
		t.Fatal("cannot reach 5 mJ in 10 s at 10 µW")
	}
	if e.Now() > 10.5 {
		t.Fatalf("overshot deadline: %v", e.Now())
	}
}

func TestRunToCompletionSingleCycle(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(100, 1))
	e.Store.SetLevel(8)
	res, ok := e.RunToCompletion(2_000_000) // 3 mJ fits in 8
	if !ok {
		t.Fatal("task failed")
	}
	if res.PowerCycles != 0 {
		t.Fatalf("unexpected power cycles: %d", res.PowerCycles)
	}
	if math.Abs(res.EnergyMJ-3) > 0.01 {
		t.Fatalf("energy %v", res.EnergyMJ)
	}
}

func TestRunToCompletionSpansPowerCycles(t *testing.T) {
	// 17.1 mJ task with a 10 mJ buffer: must brown out and recharge.
	e := newEngine(t, energy.ConstantTrace(100000, 0.5))
	e.Store.SetLevel(2)
	res, ok := e.RunToCompletion(11_400_000)
	if !ok {
		t.Fatal("task should eventually finish")
	}
	if res.PowerCycles == 0 {
		t.Fatal("task should span power cycles")
	}
	if res.OverheadMJ <= 0 {
		t.Fatal("checkpoint overhead must be charged")
	}
	if math.Abs(res.EnergyMJ-17.1) > 0.2 {
		t.Fatalf("compute energy %v, want ≈17.1", res.EnergyMJ)
	}
}

func TestRunToCompletionFailsWhenTraceEnds(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(20, 0.001))
	e.Store.SetLevel(0.2)
	_, ok := e.RunToCompletion(50_000_000)
	if ok {
		t.Fatal("impossible task reported success")
	}
	if !e.Ended() {
		t.Fatal("engine should have consumed the trace")
	}
}

func TestEnergyConservationLedger(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(2000, 1))
	for i := 0; i < 5; i++ {
		e.WaitForEnergy(4, 0)
		e.RunAtomic(2_000_000)
	}
	e.AdvanceTo(2000)
	s := e.Stats()
	// Stored energy ≤ harvested × efficiency; compute+checkpoint+level ≤ stored.
	if s.StoredMJ > s.HarvestedMJ*0.7+1e-6 {
		t.Fatalf("stored %v exceeds efficiency-limited harvest %v", s.StoredMJ, s.HarvestedMJ*0.7)
	}
	spentPlusLevel := s.ComputeMJ + s.CheckpointMJ + e.Store.Level()
	if spentPlusLevel > s.StoredMJ+e.Store.TurnOnMJ+1e-6 {
		t.Fatalf("energy appeared from nowhere: spent+level %v > stored %v + initial", spentPlusLevel, s.StoredMJ)
	}
}

func TestRecentPowerWindow(t *testing.T) {
	tr := energy.ConstantTrace(200, 1)
	for i := 100; i < 200; i++ {
		tr.Power[i] = 3
	}
	e := newEngine(t, tr)
	e.AdvanceTo(150)
	p := e.RecentPower(50)
	if math.Abs(p-3) > 1e-9 {
		t.Fatalf("recent power %v, want 3", p)
	}
	p = e.RecentPower(100)
	if math.Abs(p-2) > 1e-9 {
		t.Fatalf("100 s window power %v, want 2", p)
	}
}

func TestEnergyFor(t *testing.T) {
	e := newEngine(t, energy.ConstantTrace(10, 1))
	if math.Abs(e.EnergyFor(1_000_000)-1.5) > 1e-12 {
		t.Fatal("EnergyFor must apply the 1.5 mJ/MFLOP constant")
	}
}
