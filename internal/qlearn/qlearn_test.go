package qlearn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestTableUpdateFixedPoint(t *testing.T) {
	// With a constant reward and terminal updates, Q(s,a) converges to r.
	tab := NewTable(1, 1, 0.5, 0.9, 0)
	for i := 0; i < 100; i++ {
		tab.UpdateTerminal(0, 0, 2.0)
	}
	if math.Abs(tab.Q(0, 0)-2.0) > 1e-6 {
		t.Fatalf("terminal fixed point = %v, want 2", tab.Q(0, 0))
	}
}

func TestUpdateBootstrapsFromNextState(t *testing.T) {
	tab := NewTable(2, 1, 1.0, 0.5, 0)
	tab.SetQ(1, 0, 10)
	tab.Update(0, 0, 1, 1)
	// α=1 → Q(0,0) = r + γ·maxQ(1) = 1 + 5.
	if math.Abs(tab.Q(0, 0)-6) > 1e-9 {
		t.Fatalf("Q = %v, want 6", tab.Q(0, 0))
	}
}

func TestBestBreaksTiesLow(t *testing.T) {
	tab := NewTable(1, 3, 0.1, 0.9, 0)
	if tab.Best(0) != 0 {
		t.Fatal("all-zero Q must pick action 0 (the cheapest exit)")
	}
	tab.SetQ(0, 2, 1)
	if tab.Best(0) != 2 {
		t.Fatal("Best must find the max")
	}
}

func TestSelectEpsilonGreedy(t *testing.T) {
	tab := NewTable(1, 4, 0.1, 0.9, 1.0) // always explore
	rng := tensor.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[tab.Select(0, rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("ε=1 exploration covered only %d actions", len(seen))
	}
	tab.Epsilon = 0
	tab.SetQ(0, 3, 5)
	for i := 0; i < 20; i++ {
		if tab.Select(0, rng) != 3 {
			t.Fatal("ε=0 must be greedy")
		}
	}
}

func TestQLearningSolvesBandit(t *testing.T) {
	// Two-armed bandit: arm 1 pays 1, arm 0 pays 0.2. The agent must
	// learn to prefer arm 1.
	tab := NewTable(1, 2, 0.2, 0, 0.2)
	rng := tensor.NewRNG(2)
	for i := 0; i < 500; i++ {
		a := tab.Select(0, rng)
		r := 0.2
		if a == 1 {
			r = 1
		}
		tab.UpdateTerminal(0, a, r)
	}
	if tab.Best(0) != 1 {
		t.Fatalf("bandit not solved: Q = [%v %v]", tab.Q(0, 0), tab.Q(0, 1))
	}
}

func TestQLearningGridChain(t *testing.T) {
	// 3-state chain: action 1 moves right, reward only at the end.
	// Discounted values must propagate back: Q(0,right) ≈ γ²·r.
	tab := NewTable(4, 2, 0.3, 0.9, 0.5)
	rng := tensor.NewRNG(3)
	for ep := 0; ep < 3000; ep++ {
		s := 0
		for s < 3 {
			a := tab.Select(s, rng)
			next := s
			if a == 1 {
				next = s + 1
			}
			r := 0.0
			if next == 3 {
				r = 1
				tab.UpdateTerminal(s, a, r)
			} else {
				tab.Update(s, a, r, next)
			}
			s = next
			if a == 0 {
				break // staying ends the episode without reward
			}
		}
	}
	for s := 0; s < 3; s++ {
		if tab.Best(s) != 1 {
			t.Fatalf("state %d did not learn to move right", s)
		}
	}
	if math.Abs(tab.Q(0, 1)-0.81) > 0.15 {
		t.Fatalf("Q(0,right) = %v, want ≈γ² = 0.81", tab.Q(0, 1))
	}
}

func TestBin(t *testing.T) {
	if Bin(-1, 10, 5) != 0 {
		t.Fatal("negative must bin to 0")
	}
	if Bin(100, 10, 5) != 4 {
		t.Fatal("overflow must bin to n-1")
	}
	if Bin(5, 10, 5) != 2 {
		t.Fatalf("Bin(5,10,5) = %d", Bin(5, 10, 5))
	}
	if Bin(3, 0, 5) != 0 {
		t.Fatal("zero max must bin to 0")
	}
}

func TestExitAgentStateEncoding(t *testing.T) {
	a := NewExitAgent(3, 10, 6, 10, 0.05)
	s1 := a.State(0, 0)
	s2 := a.State(10, 0.05)
	if s1 == s2 {
		t.Fatal("extreme observations must map to different states")
	}
	if s2 >= a.Table.NumStates {
		t.Fatalf("state %d out of table range %d", s2, a.Table.NumStates)
	}
}

func TestIncrementalAgentStateEncoding(t *testing.T) {
	a := NewIncrementalAgent(8, 10, 10)
	if a.State(0, 0) == a.State(1, 10) {
		t.Fatal("distinct observations collide")
	}
	if a.State(0.99, 9.9) >= a.Table.NumStates {
		t.Fatal("state out of range")
	}
}

func TestStaticLUTSelectsDeepestAffordable(t *testing.T) {
	lut := NewStaticLUT([]float64{0.2, 0.8, 1.5}, 0.65)
	if lut.SelectExit(0.1) != -1 {
		t.Fatal("nothing affordable should return -1")
	}
	if lut.SelectExit(0.5) != 0 {
		t.Fatal("only exit 1 affordable")
	}
	if lut.SelectExit(1.0) != 1 {
		t.Fatal("exits 1-2 affordable, pick 2")
	}
	if lut.SelectExit(99) != 2 {
		t.Fatal("all affordable, pick deepest")
	}
}

func TestStaticLUTContinue(t *testing.T) {
	lut := NewStaticLUT([]float64{0.2, 0.8}, 0.65)
	if !lut.Continue(0.3, 0.5, 1.0) {
		t.Fatal("low confidence with energy must continue")
	}
	if lut.Continue(0.9, 0.5, 1.0) {
		t.Fatal("high confidence must stop")
	}
	if lut.Continue(0.3, 2.0, 1.0) {
		t.Fatal("unaffordable continuation must stop")
	}
}
