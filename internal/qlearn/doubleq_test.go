package qlearn

import (
	"testing"

	"repro/internal/tensor"
)

func TestDoubleQSolvesBandit(t *testing.T) {
	d := NewDoubleTable(1, 2, 0.2, 0, 0.2, 1)
	rng := tensor.NewRNG(2)
	for i := 0; i < 800; i++ {
		a := d.Select(0, rng)
		r := 0.2
		if a == 1 {
			r = 1
		}
		d.UpdateTerminal(0, a, r)
	}
	if d.Best(0) != 1 {
		t.Fatalf("double-Q bandit not solved: Q=[%v %v]", d.Q(0, 0), d.Q(0, 1))
	}
}

func TestDoubleQLessOptimisticThanPlain(t *testing.T) {
	// Classic overestimation setup: all actions have zero-mean noisy
	// rewards. Plain Q's max operator drifts positive; double Q stays
	// nearer zero.
	const actions = 8
	plain := NewTable(1, actions, 0.1, 0, 0.3)
	double := NewDoubleTable(1, actions, 0.1, 0, 0.3, 3)
	rng := tensor.NewRNG(4)
	for i := 0; i < 5000; i++ {
		a := rng.Intn(actions)
		r := rng.NormFloat64() // mean 0
		plain.UpdateTerminal(0, a, r)
		double.UpdateTerminal(0, a, r)
	}
	plainMax := plain.MaxQ(0)
	doubleMax := 0.0
	for a := 0; a < actions; a++ {
		if v := double.Q(0, a); v > doubleMax {
			doubleMax = v
		}
	}
	// Both estimates are noisy; double-Q's max must not exceed plain's
	// by a wide margin (statistically it should be smaller).
	if doubleMax > plainMax+0.2 {
		t.Fatalf("double-Q max %v well above plain %v", doubleMax, plainMax)
	}
}

func TestDoubleQEpsilon(t *testing.T) {
	d := NewDoubleTable(1, 3, 0.1, 0.9, 1.0, 5)
	rng := tensor.NewRNG(6)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[d.Select(0, rng)] = true
	}
	if len(seen) != 3 {
		t.Fatal("ε=1 must explore all actions")
	}
	d.SetEpsilon(0)
	if d.A.Epsilon != 0 || d.B.Epsilon != 0 {
		t.Fatal("SetEpsilon must reach both tables")
	}
}

func TestDoubleQBootstrap(t *testing.T) {
	d := NewDoubleTable(2, 1, 1.0, 0.5, 0, 7)
	d.A.SetQ(1, 0, 10)
	d.B.SetQ(1, 0, 10)
	d.Update(0, 0, 1, 1)
	// Either table updated to 1 + 0.5×10 = 6.
	if d.A.Q(0, 0) != 6 && d.B.Q(0, 0) != 6 {
		t.Fatalf("bootstrap failed: A=%v B=%v", d.A.Q(0, 0), d.B.Q(0, 0))
	}
}
