package qlearn

// StaticLUT is the paper's static exit-selection baseline (§IV, Fig. 7):
// a fixed lookup from available energy to the deepest exit whose energy
// cost fits, with no learning and no lookahead. It is the policy the
// compression phase assumes.
type StaticLUT struct {
	// ExitCostsMJ are the per-exit inference energies, ascending.
	ExitCostsMJ []float64
	// ConfidenceThreshold gates static incremental inference: continue
	// while confidence is below it and energy allows.
	ConfidenceThreshold float64
}

// NewStaticLUT builds the baseline policy from per-exit costs.
func NewStaticLUT(exitCostsMJ []float64, confidenceThreshold float64) *StaticLUT {
	return &StaticLUT{
		ExitCostsMJ:         append([]float64(nil), exitCostsMJ...),
		ConfidenceThreshold: confidenceThreshold,
	}
}

// SelectExit returns the deepest exit affordable with the available
// energy, or -1 if none fits.
func (s *StaticLUT) SelectExit(energyMJ float64) int {
	best := -1
	for i, c := range s.ExitCostsMJ {
		if c <= energyMJ {
			best = i
		}
	}
	return best
}

// Continue reports whether the static policy would run an incremental
// inference given the current confidence and the marginal cost of the
// next exit.
func (s *StaticLUT) Continue(confidence, marginalCostMJ, energyMJ float64) bool {
	return confidence < s.ConfidenceThreshold && marginalCostMJ <= energyMJ
}
