package qlearn

import "repro/internal/tensor"

// DoubleTable implements double Q-learning (van Hasselt, 2010): two
// tables updated alternately, each using the other's value for the
// bootstrap target, which removes the max-operator overestimation bias
// of plain Q-learning. An extension beyond the paper, useful when the
// reward noise (stochastic event correctness) inflates plain Q-values.
type DoubleTable struct {
	A, B *Table
	rng  *tensor.RNG
}

// NewDoubleTable builds a double Q-learner.
func NewDoubleTable(states, actions int, alpha, gamma, epsilon float64, seed uint64) *DoubleTable {
	return &DoubleTable{
		A:   NewTable(states, actions, alpha, gamma, epsilon),
		B:   NewTable(states, actions, alpha, gamma, epsilon),
		rng: tensor.NewRNG(seed + 0xdb1e),
	}
}

// Q returns the averaged action value.
func (d *DoubleTable) Q(s, a int) float64 {
	return (d.A.Q(s, a) + d.B.Q(s, a)) / 2
}

// Best returns argmax over the averaged tables.
func (d *DoubleTable) Best(s int) int {
	best := 0
	bestV := d.Q(s, 0)
	for a := 1; a < d.A.NumActions; a++ {
		if v := d.Q(s, a); v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Select returns an ε-greedy action over the averaged tables.
func (d *DoubleTable) Select(s int, rng *tensor.RNG) int {
	if rng != nil && rng.Float64() < d.A.Epsilon {
		return rng.Intn(d.A.NumActions)
	}
	return d.Best(s)
}

// SetEpsilon sets exploration on both tables.
func (d *DoubleTable) SetEpsilon(eps float64) {
	d.A.Epsilon = eps
	d.B.Epsilon = eps
}

// Update applies the double-Q rule: with probability ½ update A using
// B's evaluation of A's greedy action, else symmetrically.
func (d *DoubleTable) Update(s, a int, r float64, s2 int) {
	if d.rng.Float64() < 0.5 {
		aStar := d.A.Best(s2)
		target := r + d.A.Gamma*d.B.Q(s2, aStar)
		d.A.SetQ(s, a, d.A.Q(s, a)+d.A.Alpha*(target-d.A.Q(s, a)))
	} else {
		bStar := d.B.Best(s2)
		target := r + d.B.Gamma*d.A.Q(s2, bStar)
		d.B.SetQ(s, a, d.B.Q(s, a)+d.B.Alpha*(target-d.B.Q(s, a)))
	}
}

// UpdateTerminal applies the no-bootstrap update to a random table.
func (d *DoubleTable) UpdateTerminal(s, a int, r float64) {
	if d.rng.Float64() < 0.5 {
		d.A.UpdateTerminal(s, a, r)
	} else {
		d.B.UpdateTerminal(s, a, r)
	}
}
