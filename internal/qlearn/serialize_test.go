package qlearn

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	src := NewTable(6, 3, 0.2, 0.9, 0.1)
	src.SetQ(2, 1, 0.75)
	src.SetQ(5, 2, -0.5)

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dst.NumStates != 6 || dst.NumActions != 3 {
		t.Fatalf("dims %dx%d", dst.NumStates, dst.NumActions)
	}
	if dst.Q(2, 1) != 0.75 || dst.Q(5, 2) != -0.5 {
		t.Fatal("values lost in round trip")
	}
	if dst.Alpha != 0.2 || dst.Gamma != 0.9 || dst.Epsilon != 0.1 {
		t.Fatal("hyperparameters lost")
	}
}

func TestLoadTableRejectsGarbage(t *testing.T) {
	if _, err := LoadTable(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTableFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/q.gob"
	src := NewTable(4, 2, 0.1, 0.9, 0)
	src.SetQ(3, 1, 42)
	if err := src.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dst, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Q(3, 1) != 42 {
		t.Fatal("file round trip lost values")
	}
}
