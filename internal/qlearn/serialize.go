package qlearn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// tableBlob is the on-disk form of a Q-table. On a real deployment this
// is exactly the LUT the paper persists in FRAM so learning survives
// power failures.
type tableBlob struct {
	Format     int
	NumStates  int
	NumActions int
	Alpha      float64
	Gamma      float64
	Epsilon    float64
	Q          []float64
}

const tableFormatVersion = 1

// Save serializes the table (including hyperparameters) to w.
func (t *Table) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(tableBlob{
		Format:     tableFormatVersion,
		NumStates:  t.NumStates,
		NumActions: t.NumActions,
		Alpha:      t.Alpha,
		Gamma:      t.Gamma,
		Epsilon:    t.Epsilon,
		Q:          t.q,
	})
}

// LoadTable reads a table saved by Save.
func LoadTable(r io.Reader) (*Table, error) {
	var blob tableBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("qlearn: decode table: %w", err)
	}
	if blob.Format != tableFormatVersion {
		return nil, fmt.Errorf("qlearn: unsupported table format %d", blob.Format)
	}
	if blob.NumStates <= 0 || blob.NumActions <= 0 || len(blob.Q) != blob.NumStates*blob.NumActions {
		return nil, fmt.Errorf("qlearn: corrupt table: %d states × %d actions, %d entries",
			blob.NumStates, blob.NumActions, len(blob.Q))
	}
	t := NewTable(blob.NumStates, blob.NumActions, blob.Alpha, blob.Gamma, blob.Epsilon)
	copy(t.q, blob.Q)
	return t, nil
}

// SaveFile writes the table to a file path.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTableFile reads a table from a file path.
func LoadTableFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTable(f)
}
