// Package qlearn implements the paper's §IV runtime decision layer: a
// lightweight tabular Q-learning agent that selects the exit for each
// event from the (stored energy, charging efficiency) state, and a second
// Q-table that decides whether to continue an inference incrementally
// from the (result confidence, stored energy) state. Both tables update
// with the standard Q-learning rule (Eq. 16); the whole learner is a
// lookup table, matching the paper's negligible-overhead claim.
package qlearn

import (
	"fmt"

	"repro/internal/tensor"
)

// Table is a tabular Q-function with ε-greedy action selection.
type Table struct {
	NumStates  int
	NumActions int
	// Alpha is the learning rate, Gamma the discount, Epsilon the
	// exploration rate.
	Alpha   float64
	Gamma   float64
	Epsilon float64

	q []float64
}

// NewTable builds a zero-initialized Q-table.
func NewTable(states, actions int, alpha, gamma, epsilon float64) *Table {
	if states <= 0 || actions <= 0 {
		panic(fmt.Sprintf("qlearn: invalid table size %d×%d", states, actions))
	}
	return &Table{
		NumStates:  states,
		NumActions: actions,
		Alpha:      alpha,
		Gamma:      gamma,
		Epsilon:    epsilon,
		q:          make([]float64, states*actions),
	}
}

// Bind points the table at an externally owned backing slice of exactly
// NumStates×NumActions values. It is how the fleet simulator keeps one
// Table header per worker while the Q-values of millions of devices live
// in a packed arena: re-binding is a slice assignment, so switching the
// learner from one device to the next costs nothing and allocates
// nothing. All reads and updates go through the bound slice; the caller
// owns its lifetime.
func (t *Table) Bind(q []float64) {
	if len(q) != t.NumStates*t.NumActions {
		panic(fmt.Sprintf("qlearn: Bind with %d values for a %d×%d table", len(q), t.NumStates, t.NumActions))
	}
	t.q = q
}

// Q returns Q(s, a).
func (t *Table) Q(s, a int) float64 { return t.q[s*t.NumActions+a] }

// SetQ sets Q(s, a); tests and LUT initialization use this.
func (t *Table) SetQ(s, a int, v float64) { t.q[s*t.NumActions+a] = v }

// Best returns argmax_a Q(s, a), breaking ties toward the lowest index
// (the cheapest exit, for the exit agent).
func (t *Table) Best(s int) int {
	row := t.q[s*t.NumActions : (s+1)*t.NumActions]
	best := 0
	for a, v := range row {
		if v > row[best] {
			best = a
		}
	}
	return best
}

// MaxQ returns max_a Q(s, a).
func (t *Table) MaxQ(s int) float64 {
	row := t.q[s*t.NumActions : (s+1)*t.NumActions]
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Select returns an ε-greedy action for state s.
func (t *Table) Select(s int, rng *tensor.RNG) int {
	if rng != nil && rng.Float64() < t.Epsilon {
		return rng.Intn(t.NumActions)
	}
	return t.Best(s)
}

// Update applies the paper's Eq. 16:
//
//	Q(s,a) += α (r + γ·max_a' Q(s',a') − Q(s,a))
func (t *Table) Update(s, a int, r float64, s2 int) {
	i := s*t.NumActions + a
	t.q[i] += t.Alpha * (r + t.Gamma*t.MaxQ(s2) - t.q[i])
}

// UpdateTerminal applies the update with no bootstrap term (end of an
// episode or when the successor state is not observed).
func (t *Table) UpdateTerminal(s, a int, r float64) {
	i := s*t.NumActions + a
	t.q[i] += t.Alpha * (r - t.q[i])
}

// Bin discretizes v ∈ [0, max] into one of n bins.
func Bin(v, max float64, n int) int {
	if n <= 1 || max <= 0 {
		return 0
	}
	if v <= 0 {
		return 0
	}
	if v >= max {
		return n - 1
	}
	return int(v / max * float64(n))
}

// ExitAgent selects an inference exit from the EH state (§IV): state is
// the discretized (available energy, recent charging power) pair and the
// action set is the exits.
type ExitAgent struct {
	Table      *Table
	EnergyBins int
	PowerBins  int
	// MaxEnergyMJ and MaxPowerMW bound the discretization ranges
	// (buffer capacity and trace peak power).
	MaxEnergyMJ float64
	MaxPowerMW  float64
}

// NewExitAgent builds the exit-selection learner with the paper's
// lightweight defaults: α=0.2, γ=0.9, ε=0.1.
func NewExitAgent(exits, energyBins, powerBins int, maxEnergyMJ, maxPowerMW float64) *ExitAgent {
	return &ExitAgent{
		Table:       NewTable(energyBins*powerBins, exits, 0.2, 0.9, 0.1),
		EnergyBins:  energyBins,
		PowerBins:   powerBins,
		MaxEnergyMJ: maxEnergyMJ,
		MaxPowerMW:  maxPowerMW,
	}
}

// State maps the continuous observation to a table state.
func (a *ExitAgent) State(energyMJ, powerMW float64) int {
	eb := Bin(energyMJ, a.MaxEnergyMJ, a.EnergyBins)
	pb := Bin(powerMW, a.MaxPowerMW, a.PowerBins)
	return eb*a.PowerBins + pb
}

// SelectExit returns an ε-greedy exit for the observation.
func (a *ExitAgent) SelectExit(energyMJ, powerMW float64, rng *tensor.RNG) int {
	return a.Table.Select(a.State(energyMJ, powerMW), rng)
}

// IncrementalAgent makes the second §IV decision: given the confidence of
// the result at the chosen exit and the energy left, continue to the next
// exit (action 1) or emit the current result (action 0).
type IncrementalAgent struct {
	Table          *Table
	ConfidenceBins int
	EnergyBins     int
	MaxEnergyMJ    float64
}

// Incremental actions.
const (
	ActionStop     = 0
	ActionContinue = 1
)

// NewIncrementalAgent builds the continue/stop learner.
func NewIncrementalAgent(confidenceBins, energyBins int, maxEnergyMJ float64) *IncrementalAgent {
	return &IncrementalAgent{
		Table:          NewTable(confidenceBins*energyBins, 2, 0.2, 0.9, 0.1),
		ConfidenceBins: confidenceBins,
		EnergyBins:     energyBins,
		MaxEnergyMJ:    maxEnergyMJ,
	}
}

// State maps (confidence ∈ [0,1], energy) to a table state.
func (a *IncrementalAgent) State(confidence, energyMJ float64) int {
	cb := Bin(confidence, 1, a.ConfidenceBins)
	eb := Bin(energyMJ, a.MaxEnergyMJ, a.EnergyBins)
	return cb*a.EnergyBins + eb
}

// Decide returns ActionContinue or ActionStop for the observation.
func (a *IncrementalAgent) Decide(confidence, energyMJ float64, rng *tensor.RNG) int {
	return a.Table.Select(a.State(confidence, energyMJ), rng)
}
