package ehinfer

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/batch"
)

// Prediction is the answer to one online inference request: the
// predicted class at the exit taken, that exit's confidence, the
// per-exit anytime profile, and the backend that produced it.
type Prediction = batch.Prediction

// InferOption tunes a Session.Infer/InferBatch call. The defaults
// (deepest exit, no threshold) apply when none are given.
type InferOption func(*batch.Options)

// InferToExit bounds inference depth: the prediction is taken at exit
// e (0-based) unless a threshold stops earlier.
func InferToExit(e int) InferOption {
	return func(o *batch.Options) { o.Exit = e }
}

// InferWithThreshold enables anytime early exit: the prediction is
// taken at the first exit whose normalized-entropy confidence reaches
// th, falling back to the depth bound when none does.
func InferWithThreshold(th float64) InferOption {
	return func(o *batch.Options) { o.Threshold = th }
}

// inferModels caches one serving executor per deployment so repeated
// Infer calls reuse compiled plans and pooled arenas.
type inferModels struct {
	mu sync.Mutex
	m  map[*Deployed]*batch.Model
}

// model returns the session's serving executor for d, building it on
// first use with the session's backend preference.
func (s *Session) model(d *Deployed) (*batch.Model, error) {
	s.models.mu.Lock()
	defer s.models.mu.Unlock()
	if m := s.models.m[d]; m != nil {
		return m, nil
	}
	m, err := batch.NewModel(d, s.backend, 0)
	if err != nil {
		return nil, fmt.Errorf("ehinfer: %w", err)
	}
	if s.models.m == nil {
		s.models.m = make(map[*Deployed]*batch.Model)
	}
	s.models.m[d] = m
	return m, nil
}

// Infer runs one input (a flattened CHW image matching the
// deployment's input geometry, e.g. FromImageData for 3×32×32) through
// the deployment and returns the prediction. The backend follows the
// session's WithBackend preference, then the deployment's own default,
// then the compiled plan. Malformed inputs (wrong volume, NaN/Inf) are
// errors, never panics.
func (s *Session) Infer(ctx context.Context, d *Deployed, input []float32, opts ...InferOption) (Prediction, error) {
	preds, err := s.InferBatch(ctx, d, [][]float32{input}, opts...)
	if err != nil {
		return Prediction{}, err
	}
	return preds[0], nil
}

// InferBatch runs a batch of inputs through the deployment on the
// batched executor (micro-batches of the model's batch bound; per-image
// results are bit-identical to single-input Infer calls on the same
// backend). ctx is checked between micro-batches; on cancellation the
// completed prefix is discarded and ctx.Err() returned.
func (s *Session) InferBatch(ctx context.Context, d *Deployed, inputs [][]float32, opts ...InferOption) ([]Prediction, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil deployment", ErrModelNotFound)
	}
	opt := batch.Options{Exit: -1}
	for _, o := range opts {
		o(&opt)
	}
	m, err := s.model(d)
	if err != nil {
		return nil, err
	}
	reqs := make([]batch.Req, len(inputs))
	for i, in := range inputs {
		reqs[i] = batch.Req{Input: in, Options: opt}
		if err := m.Validate(&reqs[i]); err != nil {
			return nil, fmt.Errorf("ehinfer: input %d: %w", i, err)
		}
	}
	preds := make([]Prediction, 0, len(reqs))
	for lo := 0; lo < len(reqs); lo += m.MaxBatch() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+m.MaxBatch(), len(reqs))
		preds = append(preds, m.InferBatch(reqs[lo:hi])...)
	}
	return preds, nil
}
