package ehinfer

// This file is the paper-reproduction bench harness: one benchmark per
// table/figure of the evaluation (§V), each printing a paper-vs-measured
// comparison, plus ablation benches for the design choices DESIGN.md
// calls out and micro-benchmarks for the hot kernels. Run with
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the outputs.

import (
	"fmt"
	"testing"
)

// BenchmarkSetupArchitecture regenerates the §V-A setup table: LeNet-EE
// per-exit FLOPs (paper: 0.4452/1.2602/1.6202 MFLOPs) and fp32 weight
// storage (paper: 580 KB).
func BenchmarkSetupArchitecture(b *testing.B) {
	var net *Network
	for i := 0; i < b.N; i++ {
		net = LeNetEE(nil)
	}
	b.ReportMetric(float64(net.ExitFLOPs(0)), "exit1-FLOPs")
	b.ReportMetric(float64(net.ExitFLOPs(1)), "exit2-FLOPs")
	b.ReportMetric(float64(net.ExitFLOPs(2)), "exit3-FLOPs")
	b.ReportMetric(float64(net.WeightBytes())/1024, "weight-KB")
	fmt.Printf("\n[§V-A setup] exits: paper {0.4452, 1.2602, 1.6202} MFLOPs → measured {%.4f, %.4f, %.4f}; weights: paper 580 KB → measured %.1f KB\n",
		float64(net.ExitFLOPs(0))/1e6, float64(net.ExitFLOPs(1))/1e6, float64(net.ExitFLOPs(2))/1e6,
		float64(net.WeightBytes())/1024)
}

// BenchmarkFig1bCompressionAccuracy regenerates Fig. 1b: per-exit
// accuracy under full precision, uniform, and nonuniform compression.
func BenchmarkFig1bCompressionAccuracy(b *testing.B) {
	var rows []struct {
		scheme string
		accs   []float64
	}
	for i := 0; i < b.N; i++ {
		net := LeNetEE(nil)
		sur, err := NewSurrogate(net, nil)
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, p := range []struct {
			name string
			pol  *Policy
		}{
			{"Full-precision", FullPrecision(net)},
			{"Uniform", Fig1bUniform(net)},
			{"Nonuniform", Fig1bNonuniform()},
		} {
			rows = append(rows, struct {
				scheme string
				accs   []float64
			}{p.name, sur.ExitAccuracies(p.pol)})
		}
	}
	paper := [][]float64{{0.649, 0.720, 0.730}, {0.573, 0.652, 0.675}, {0.619, 0.685, 0.699}}
	fmt.Printf("\n[Fig. 1b] per-exit accuracy (exit1/exit2/exit3):\n")
	for i, r := range rows {
		fmt.Printf("  %-15s paper {%.1f %.1f %.1f}%% → measured {%.1f %.1f %.1f}%%\n",
			r.scheme,
			100*paper[i][0], 100*paper[i][1], 100*paper[i][2],
			100*r.accs[0], 100*r.accs[1], 100*r.accs[2])
	}
}

// BenchmarkFig4PolicySearch regenerates Fig. 4: the DDPG dual-agent
// search's layer-wise preserve ratios and bitwidths under the 1.15 MFLOPs
// + 16 KB constraints.
func BenchmarkFig4PolicySearch(b *testing.B) {
	var res *SearchResult
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		net := LeNetEE(NewRNG(3))
		sur, err := NewSurrogate(net, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err = SearchCompression(net, sur, SearchConfig{
			Episodes: 60,
			Trace:    sc.Trace,
			Schedule: sc.Schedule,
			Storage:  sc.Storage,
			Seed:     42,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Racc, "Racc")
	b.ReportMetric(float64(res.Measure.ModelFLOPs)/1e6, "F-model-MFLOPs")
	b.ReportMetric(float64(res.Measure.WeightBytes)/1024, "S-model-KB")
	fmt.Printf("\n[Fig. 4] searched policy (constraints: F ≤ 1.15 MFLOPs, S ≤ 16 KB; measured F = %.3f M, S = %.1f KB, Racc = %.3f):\n%s",
		float64(res.Measure.ModelFLOPs)/1e6, float64(res.Measure.WeightBytes)/1024, res.Racc, res.Policy)
}

// BenchmarkFig5IEpmJ regenerates Fig. 5 plus the §V-C accuracy rows:
// IEpmJ and average accuracies for ours vs SonicNet/SpArSeNet/LeNet-Cifar.
func BenchmarkFig5IEpmJ(b *testing.B) {
	var rows []SystemRow
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		rows, err = CompareSystems(sc, d, CompareConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	paperIEpmJ := []float64{0.89, 0.25, 0.05, 0.70}
	paperAccAll := []float64{50.1, 14.0, 2.6, 39.2}
	paperAccProc := []float64{65.4, 75.4, 82.7, 74.7}
	b.ReportMetric(rows[0].IEpmJ, "IEpmJ-ours")
	fmt.Printf("\n[Fig. 5 / §V-C] IEpmJ and accuracy:\n")
	for i, r := range rows {
		fmt.Printf("  %-13s IEpmJ: paper %.2f → measured %.3f | acc(all): paper %.1f%% → %.1f%% | acc(processed): paper %.1f%% → %.1f%%\n",
			r.System, paperIEpmJ[i], r.IEpmJ, paperAccAll[i], 100*r.AccAll, paperAccProc[i], 100*r.AccProcessed)
	}
	fmt.Printf("  factors: vs SonicNet paper 3.6× → %.1f×; vs SpArSeNet paper 18.9× → %.1f×; vs LeNet-Cifar paper 1.28× → %.2f×\n",
		rows[0].IEpmJ/rows[1].IEpmJ, rows[0].IEpmJ/rows[2].IEpmJ, rows[0].IEpmJ/rows[3].IEpmJ)
}

// BenchmarkFig6FLOPs regenerates Fig. 6: per-exit FLOPs before/after
// compression and the baseline FLOPs bars.
func BenchmarkFig6FLOPs(b *testing.B) {
	net := LeNetEE(nil)
	before := []int64{net.ExitFLOPs(0), net.ExitFLOPs(1), net.ExitFLOPs(2)}
	var after []int64
	for i := 0; i < b.N; i++ {
		cnet := LeNetEE(NewRNG(7))
		if err := ApplyPolicy(cnet, Fig1bNonuniform()); err != nil {
			b.Fatal(err)
		}
		after = []int64{cnet.ExitFLOPs(0), cnet.ExitFLOPs(1), cnet.ExitFLOPs(2)}
	}
	paperRatio := []float64{0.31, 0.44, 0.67}
	fmt.Printf("\n[Fig. 6] FLOPs before → after compression:\n")
	for i := 0; i < 3; i++ {
		ratio := float64(after[i]) / float64(before[i])
		fmt.Printf("  Exit%d: %.4fM → %.4fM (ratio: paper %.2f× → measured %.2f×)\n",
			i+1, float64(before[i])/1e6, float64(after[i])/1e6, paperRatio[i], ratio)
	}
	for _, bl := range AllBaselines() {
		fmt.Printf("  %-12s %.2fM FLOPs (single exit, uncompressed)\n", bl.Name, float64(bl.FLOPs)/1e6)
	}
}

// BenchmarkFig7aRuntimeLearning regenerates Fig. 7a: the per-episode
// average-accuracy learning curve of Q-learning vs the static LUT.
func BenchmarkFig7aRuntimeLearning(b *testing.B) {
	var q, s []float64
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		q, s, err = LearningCurve(sc, d, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sAvg float64
	for _, v := range s {
		sAvg += v
	}
	sAvg /= float64(len(s))
	late := (q[len(q)-1] + q[len(q)-2]) / 2
	b.ReportMetric(late, "q-final-acc")
	b.ReportMetric(sAvg, "static-acc")
	fmt.Printf("\n[Fig. 7a] learning curve (paper: Q rises to ≈55%% vs static ≈50%%, +10.2%%):\n  episodes: ")
	for _, v := range q {
		fmt.Printf("%.1f ", 100*v)
	}
	fmt.Printf("\n  static mean %.1f%%, Q final %.1f%% (measured %+.1f%% relative)\n",
		100*sAvg, 100*late, 100*(late/sAvg-1))
}

// BenchmarkFig7bExitUsage regenerates Fig. 7b: exit-usage histograms for
// trained Q-learning vs the static LUT.
func BenchmarkFig7bExitUsage(b *testing.B) {
	var qh, sh []int
	var qp, sp int
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		qh, sh, qp, sp, err = ExitUsage(sc, d, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := 500.0
	fmt.Printf("\n[Fig. 7b] exit usage (%% of all events):\n")
	fmt.Printf("  Q-learning: paper {71.0, 2.8, 11.4}%% → measured {%.1f, %.1f, %.1f}%% (processed %d)\n",
		100*float64(qh[0])/n, 100*float64(qh[1])/n, 100*float64(qh[2])/n, qp)
	fmt.Printf("  Static LUT: paper {57.6, 3.8, 15.2}%% → measured {%.1f, %.1f, %.1f}%% (processed %d)\n",
		100*float64(sh[0])/n, 100*float64(sh[1])/n, 100*float64(sh[2])/n, sp)
	fmt.Printf("  processed events: paper +11.2%% → measured %+.1f%%\n", 100*(float64(qp)/float64(sp)-1))
}

// BenchmarkLatencyPerEvent regenerates the §V-D latency comparison:
// per-event latency (time units) and per-inference FLOPs.
func BenchmarkLatencyPerEvent(b *testing.B) {
	var rows []SystemRow
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		rows, err = CompareSystems(sc, d, CompareConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	paperLat := []float64{18.0, 139.9, 183.4, 56.7}
	b.ReportMetric(rows[0].MeanLatencyS, "latency-ours-s")
	fmt.Printf("\n[§V-D] per-event latency (1 s time units):\n")
	for i, r := range rows {
		fmt.Printf("  %-13s paper %.1f → measured %.1f | per-inference %.3f MFLOPs\n",
			r.System, paperLat[i], r.MeanLatencyS, r.MeanInfFLOPs/1e6)
	}
	fmt.Printf("  improvements: vs SonicNet paper 7.8× → %.1f×; vs SpArSeNet paper 10.2× → %.1f×; vs LeNet-Cifar paper 3.15× → %.1f×\n",
		rows[1].MeanLatencyS/rows[0].MeanLatencyS,
		rows[2].MeanLatencyS/rows[0].MeanLatencyS,
		rows[3].MeanLatencyS/rows[0].MeanLatencyS)
}
