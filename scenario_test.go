package ehinfer

import (
	"reflect"
	"testing"
)

// TestScenarioBuilderDefaults: an unconfigured builder reproduces the
// paper scenario exactly (including the session-seeded variant).
func TestScenarioBuilderDefaults(t *testing.T) {
	sc, err := NewScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultScenario(42)
	if !reflect.DeepEqual(sc.Trace.Power, want.Trace.Power) {
		t.Error("default builder trace diverges from DefaultScenario")
	}
	if !reflect.DeepEqual(sc.Schedule.Events, want.Schedule.Events) {
		t.Error("default builder schedule diverges from DefaultScenario")
	}
	if sc.Device.Name != want.Device.Name || *sc.Storage != *want.Storage {
		t.Error("default builder device/storage diverge from DefaultScenario")
	}

	session := NewSession(WithSeed(9))
	sc2, err := session.NewScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	want2 := session.Scenario()
	if !reflect.DeepEqual(sc2.Trace.Power, want2.Trace.Power) {
		t.Error("session-seeded builder diverges from Session.Scenario")
	}
}

// TestScenarioBuilderCustomAxes exercises each fluent axis.
func TestScenarioBuilderCustomAxes(t *testing.T) {
	_, test := SynthCIFAR(SynthConfig{Seed: 4}, 4, 30)
	sc, err := NewScenario().
		Seed(5).
		Kinetic(1, 0.8).
		BurstyEvents(60, 4).
		DeviceNamed("ApolloM4").
		Capacitor(10).
		Empirical(test).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Trace.Duration() != 3600 {
		t.Errorf("trace duration %d, want 3600", sc.Trace.Duration())
	}
	if len(sc.Schedule.Events) != 60 {
		t.Errorf("%d events, want 60", len(sc.Schedule.Events))
	}
	if sc.Device.Name != "ApolloM4" {
		t.Errorf("device %q, want ApolloM4", sc.Device.Name)
	}
	if sc.Storage.CapacityMJ != 10 {
		t.Errorf("capacity %g, want 10", sc.Storage.CapacityMJ)
	}
	if sc.TestSet == nil {
		t.Fatal("empirical scenario lost its test set")
	}
	for i, ev := range sc.Schedule.Events {
		if ev.SampleIndex < 0 || ev.SampleIndex >= test.Len() {
			t.Fatalf("event %d has no attached sample", i)
		}
		if test.Samples[ev.SampleIndex].Label != ev.Class {
			t.Fatalf("event %d sample class mismatch", i)
		}
	}
	// A custom trace without an explicit schedule spans the chosen
	// trace, not the default 6 h one.
	sc2, err := NewScenario().Solar(0.25, 0.05).Build()
	if err != nil {
		t.Fatal(err)
	}
	last := sc2.Schedule.Events[len(sc2.Schedule.Events)-1]
	if last.T >= sc2.Trace.Duration() {
		t.Fatalf("default schedule overruns the custom trace (%d ≥ %d)", last.T, sc2.Trace.Duration())
	}
}

// TestScenarioBuilderErrors: invalid axes surface from Build, first one
// wins, and chains never panic.
func TestScenarioBuilderErrors(t *testing.T) {
	if _, err := NewScenario().Events(0, 10).Build(); err == nil {
		t.Error("zero events must fail")
	}
	if _, err := NewScenario().Capacitor(-1).Build(); err == nil {
		t.Error("negative capacity must fail")
	}
	if _, err := NewScenario().DeviceNamed("no-such-mcu").Build(); err == nil {
		t.Error("unknown device name must fail")
	}
	if _, err := NewScenario().Trace(nil).Build(); err == nil {
		t.Error("nil trace must fail")
	}
	if _, err := NewScenario().Empirical(nil).Build(); err == nil {
		t.Error("nil empirical set must fail")
	}
	if _, err := NewScenario().TraceCSV("/does/not/exist.csv").Build(); err == nil {
		t.Error("missing trace file must fail at Build")
	}
}

// TestFromImageDataValidates covers the shape-naming error (the old
// behaviour was a panic deep inside tensor.FromSlice).
func TestFromImageDataValidates(t *testing.T) {
	if _, err := FromImageData(make([]float32, 10)); err == nil {
		t.Fatal("short slice must be rejected")
	}
	img, err := FromImageData(make([]float32, 3*32*32))
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Shape(); got[0] != 3 || got[1] != 32 || got[2] != 32 {
		t.Fatalf("unexpected shape %v", got)
	}
}
