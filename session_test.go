package ehinfer

// Session façade tests: option defaults, cancellation mid-grid,
// streaming-vs-final consistency, and the pinned guarantee that
// Session-run grids are bit-identical to the free-standing engine path
// at any worker count.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/exper"
)

// sessionTestGrid is a fast 4-point grid (2 exits × 2 seeds) with short
// traces and few events.
func sessionTestGrid() *ExperimentGrid {
	return &ExperimentGrid{
		Name:     "session-test",
		BaseSeed: 21,
		Events:   20,
		Traces:   []TraceSpec{exper.SolarTrace(900, 0.05)},
		Devices:  []DeviceSpec{exper.MSP432Device()},
		Policies: []PolicySpec{exper.NonuniformPolicy()},
		Exits:    []ExitSpec{exper.QLearningExit(2), exper.StaticExit()},
		Storages: []StorageSpec{exper.Capacitor(3)},
		Seeds:    []uint64{1, 2},
	}
}

func TestSessionOptionDefaults(t *testing.T) {
	s := NewSession()
	if s.Seed() != 42 {
		t.Fatalf("default seed must be the paper's 42, got %d", s.Seed())
	}
	if s.Workers() < 1 {
		t.Fatalf("default worker cap must resolve to >= 1, got %d", s.Workers())
	}
	if s.CacheSize() != 0 {
		t.Fatal("a fresh session must start with an empty deployment cache")
	}

	s = NewSession(WithWorkers(-3))
	if s.Workers() != NewSession(WithWorkers(0)).Workers() {
		t.Fatal("negative worker caps must behave like 0 (one worker per core)")
	}

	s = NewSession(WithWorkers(2), WithSeed(7), WithDeployedCache(false))
	if s.Workers() != 2 || s.Seed() != 7 {
		t.Fatalf("options not applied: workers=%d seed=%d", s.Workers(), s.Seed())
	}
	if _, err := s.RunGrid(context.Background(), sessionTestGrid()); err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != 0 {
		t.Fatal("WithDeployedCache(false) must disable caching")
	}

	// Two deterministic sessions derive identical RNG streams; distinct
	// streams differ.
	a, b := NewSession(WithSeed(5)).NewRNG(1), NewSession(WithSeed(5)).NewRNG(1)
	if a.Float64() != b.Float64() {
		t.Fatal("session RNG derivation must be a pure function of (seed, stream)")
	}
	if NewSession(WithSeed(5)).NewRNG(1).Float64() == NewSession(WithSeed(5)).NewRNG(2).Float64() {
		t.Fatal("distinct streams must separate")
	}
}

func TestSessionRunGridCachesDeployments(t *testing.T) {
	s := NewSession(WithWorkers(2))
	g := sessionTestGrid()
	if _, err := s.RunGrid(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != 1 {
		t.Fatalf("one (policy, seed) pair must cache one deployment, got %d", s.CacheSize())
	}
	if _, err := s.RunGrid(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if s.CacheSize() != 1 {
		t.Fatalf("repeated grid must reuse the cached deployment, got %d", s.CacheSize())
	}
}

func TestSessionCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var first bool
	s := NewSession(WithWorkers(1), WithProgress(func(ExperimentResult) {
		if !first {
			first = true
			cancel()
		}
	}))
	res, err := s.RunGrid(ctx, sessionTestGrid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial results must be preserved on cancellation")
	}
	var completed, unfinished int
	for _, r := range res.Results {
		if r.Err == "" && len(r.Rows) > 0 {
			completed++
		} else {
			unfinished++
		}
	}
	if completed == 0 || unfinished == 0 {
		t.Fatalf("want a mix of completed and unfinished points, got %d/%d", completed, unfinished)
	}
}

func TestSessionStreamingMatchesFinal(t *testing.T) {
	s := NewSession(WithWorkers(3))
	run := s.StartGrid(context.Background(), sessionTestGrid())

	streamed := map[int]string{}
	for r := range run.Results() {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := streamed[r.Point.Index]; dup {
			t.Fatalf("point %d streamed twice", r.Point.Index)
		}
		streamed[r.Point.Index] = string(b)
	}
	final, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(final.Results) {
		t.Fatalf("streamed %d points, final has %d", len(streamed), len(final.Results))
	}
	for i, r := range final.Results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if streamed[i] != string(b) {
			t.Fatalf("point %d: streamed result differs from final\nstream: %s\nfinal:  %s", i, streamed[i], b)
		}
	}
}

// TestSessionBitIdenticalToEnginePath is the API-redesign acceptance
// pin: a Session-run grid serializes byte-identically to the
// free-standing engine path, at any worker count, with and without the
// deployment cache warm.
func TestSessionBitIdenticalToEnginePath(t *testing.T) {
	g := sessionTestGrid()

	old, err := NewExperimentEngine(1).Run(g)
	if err != nil {
		t.Fatal(err)
	}
	oldJSON, err := old.JSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		s := NewSession(WithWorkers(workers))
		for pass := 0; pass < 2; pass++ { // second pass runs cache-warm
			res, err := s.RunGrid(context.Background(), g)
			if err != nil {
				t.Fatal(err)
			}
			j, err := res.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(oldJSON, j) {
				t.Fatalf("session (workers=%d, pass=%d) diverged from engine path", workers, pass)
			}
		}
	}
}

func TestSessionWithBackend(t *testing.T) {
	if s := NewSession(); s.Backend() != BackendDefault {
		t.Fatalf("a fresh session must carry the unset backend sentinel, got %v", s.Backend())
	}
	if BackendDefault.Resolve() != BackendPlan {
		t.Fatal("the unset backend must resolve to the compiled plan")
	}
	s := NewSession(WithBackend(BackendInt8))
	if s.Backend() != BackendInt8 {
		t.Fatalf("WithBackend not applied: %v", s.Backend())
	}
	if _, err := ParseBackend("int8"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionResumeGridByteIdentical(t *testing.T) {
	g := sessionTestGrid()
	full, err := NewSession(WithWorkers(2)).RunGrid(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Restore the first half of the points and resume the rest; streamed
	// results must cover only the remainder, and the final document must
	// match the uninterrupted run byte for byte.
	completed := map[int]ExperimentResult{}
	for i := 0; i < len(full.Results)/2; i++ {
		completed[i] = full.Results[i]
	}
	run := NewSession(WithWorkers(3)).ResumeGrid(context.Background(), g, completed)
	streamed := 0
	for r := range run.Results() {
		if _, restored := completed[r.Point.Index]; restored {
			t.Fatalf("restored point %d was re-streamed", r.Point.Index)
		}
		streamed++
	}
	final, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(full.Results)-len(completed) {
		t.Fatalf("streamed %d points, want %d", streamed, len(full.Results)-len(completed))
	}
	got, err := final.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed session run serialized differently from uninterrupted run")
	}
}
