package ehinfer

import (
	"context"
	"fmt"

	"repro/internal/accmodel"
	"repro/internal/baselines"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/exper"
	"repro/internal/fixed"
	"repro/internal/fleet"
	"repro/internal/mcu"
	"repro/internal/metrics"
	"repro/internal/multiexit"
	"repro/internal/qlearn"
	"repro/internal/search"
	"repro/internal/tensor"
)

// Re-exported types: the nouns of the system. Aliases keep the façade
// thin — the internal packages hold the documentation and behaviour.
type (
	// Tensor is the dense float32 tensor used throughout.
	Tensor = tensor.Tensor
	// RNG is the deterministic random generator all components share.
	RNG = tensor.RNG

	// Network is a multi-exit neural network.
	Network = multiexit.Network
	// InferenceState is a suspended (resumable) inference.
	InferenceState = multiexit.State
	// TrainConfig controls joint multi-exit training.
	TrainConfig = multiexit.TrainConfig

	// Policy is a per-layer compression policy.
	Policy = compress.Policy
	// LayerPolicy is one layer's compression decision.
	LayerPolicy = compress.LayerPolicy
	// Surrogate predicts per-exit accuracy for a policy.
	Surrogate = accmodel.Surrogate

	// SearchConfig parameterizes the DDPG compression search.
	SearchConfig = search.Config
	// SearchResult is the search outcome.
	SearchResult = search.Result

	// Trace is a harvesting power profile.
	Trace = energy.Trace
	// Storage is the capacitor energy buffer.
	Storage = energy.Storage
	// Schedule is a time-ordered event set.
	Schedule = energy.Schedule
	// Event is one sensing trigger.
	Event = energy.Event
	// SolarConfig parameterizes synthetic solar traces.
	SolarConfig = energy.SolarConfig
	// KineticConfig parameterizes synthetic kinetic traces.
	KineticConfig = energy.KineticConfig

	// Device is the MCU cost model.
	Device = mcu.Device

	// Deployed is a compressed network ready for the runtime.
	Deployed = core.Deployed
	// Runtime executes event schedules on the intermittent device.
	Runtime = core.Runtime
	// RuntimeConfig parameterizes the runtime.
	RuntimeConfig = core.RuntimeConfig
	// Scenario is the shared experimental setup.
	Scenario = core.Scenario
	// CompareConfig tweaks the system comparison.
	CompareConfig = core.CompareConfig
	// SystemRow is one comparison line (Fig. 5 / §V-D).
	SystemRow = core.SystemRow
	// PolicyMode selects Q-learning vs static-LUT exit selection.
	PolicyMode = core.PolicyMode
	// InferBackend selects the empirical-mode inference backend:
	// compiled plan (default), legacy layer walk, or int8 fixed-point.
	InferBackend = core.InferBackend

	// Report aggregates simulation outcomes (IEpmJ, accuracy, latency).
	Report = metrics.Report
	// EventOutcome records one event's handling.
	EventOutcome = metrics.EventOutcome

	// Baseline describes one comparison system.
	Baseline = baselines.Baseline

	// Dataset is an in-memory labelled image set.
	Dataset = dataset.Set
	// SynthConfig parameterizes the SynthCIFAR generator.
	SynthConfig = dataset.SynthConfig

	// ExitAgent is the runtime exit-selection Q-learner.
	ExitAgent = qlearn.ExitAgent
	// IncrementalAgent is the continue/stop Q-learner.
	IncrementalAgent = qlearn.IncrementalAgent
)

// Experiment-engine re-exports: declarative scenario grids executed on a
// deterministic goroutine worker pool (see internal/exper for the
// worker/determinism contract).
type (
	// ExperimentGrid is a declarative cross product of scenario axes.
	ExperimentGrid = exper.Grid
	// ExperimentEngine shards a grid's points across worker goroutines.
	ExperimentEngine = exper.Engine
	// ExperimentResult is the outcome of one grid point.
	ExperimentResult = exper.Result
	// GridResult is a completed grid run with aggregation and JSON output.
	GridResult = exper.GridResult
	// AggRow is one across-seed aggregate of a (scenario, system) pair.
	AggRow = exper.AggRow
	// TraceSpec declaratively describes an energy-trace axis value.
	TraceSpec = exper.TraceSpec
	// DeviceSpec names an MCU axis value.
	DeviceSpec = exper.DeviceSpec
	// PolicySpec names a compression-policy axis value.
	PolicySpec = exper.PolicySpec
	// ExitSpec names a runtime exit-policy axis value.
	ExitSpec = exper.ExitSpec
	// StorageSpec names a capacitor axis value.
	StorageSpec = exper.StorageSpec
	// GridSpec is the fully-declarative (JSON-serializable) grid used by
	// the ehserved HTTP API; device and policy axes are registry names.
	GridSpec = exper.GridSpec
)

// Fleet-simulator re-exports: populations of 10⁴–10⁶ simulated
// intermittent devices sharded across workers with packed per-device RL
// state (see internal/fleet for the arena/determinism contract).
type (
	// FleetSpec is the declarative (JSON-serializable) description of a
	// fleet run, the fleet twin of GridSpec.
	FleetSpec = fleet.Spec
	// FleetPopulation describes one homogeneous device population.
	FleetPopulation = fleet.PopulationSpec
	// FleetChurn is one deterministic churn/failure-injection rule.
	FleetChurn = fleet.ChurnSpec
	// Fleet is a compiled, runnable fleet.
	Fleet = fleet.Fleet
	// FleetSnapshot is one periodic aggregate of a running fleet.
	FleetSnapshot = fleet.Snapshot
	// FleetPopSnapshot is one population's slice of a snapshot.
	FleetPopSnapshot = fleet.PopSnapshot
	// FleetResult is a completed fleet run.
	FleetResult = fleet.Result
)

// NewExperimentEngine returns an engine with the given worker cap
// (<= 0 means one worker per core).
//
// Deprecated: use NewSession(WithWorkers(workers)) — the Session adds
// context cancellation, streaming results, and deployment caching on the
// same engine, with bit-identical output.
func NewExperimentEngine(workers int) *ExperimentEngine { return exper.NewEngine(workers) }

// PaperCompareGrid is the Fig. 5 / §V-D setup as a one-point grid.
func PaperCompareGrid(seed uint64, warmup int, mode PolicyMode) *ExperimentGrid {
	return exper.PaperCompareGrid(seed, warmup, mode)
}

// PaperSweepGrid is the harvesting-peak × capacitor design-space grid.
func PaperSweepGrid(peaksMW, capsMJ []float64, seeds, events int) *ExperimentGrid {
	return exper.PaperSweepGrid(peaksMW, capsMJ, seeds, events)
}

// FleetGrid crosses three MCU classes with solar and kinetic harvesting
// and both runtime policies.
func FleetGrid(seeds []uint64, events int) *ExperimentGrid {
	return exper.FleetGrid(seeds, events)
}

// SeedReplicationGrid replicates the paper's default scenario over n
// seeds.
func SeedReplicationGrid(n, events int) *ExperimentGrid {
	return exper.SeedReplicationGrid(n, events)
}

// Runtime policy modes.
const (
	PolicyQLearning = core.PolicyQLearning
	PolicyStaticLUT = core.PolicyStaticLUT
)

// Inference backends. The zero value BackendDefault means "no explicit
// choice" and resolves to BackendPlan: a compiled zero-allocation
// inference plan whose float32 output is bit-identical to the legacy
// layer walk. BackendInt8 runs the fixed-point pipeline (int8 weights,
// uint8 activations, int32 accumulators) — faster on integer hardware
// and numerically closer to the deployed MCU, at the cost of exactness;
// BackendInt8Fast runs the packed-weight integer pipeline, the fastest
// backend, holding statistical (per-exit accuracy) rather than bitwise
// parity with the float plan; BackendLegacy is the original layer walk.
const (
	BackendDefault  = core.BackendDefault
	BackendPlan     = core.BackendPlan
	BackendLegacy   = core.BackendLegacy
	BackendInt8     = core.BackendInt8
	BackendInt8Fast = core.BackendInt8Fast
)

// ParseBackend resolves a backend name ("plan"/"float32", "legacy",
// "int8", "int8fast"); "" yields BackendDefault.
func ParseBackend(name string) (InferBackend, error) { return core.ParseBackend(name) }

// BackendNames lists the canonical inference-backend names.
func BackendNames() []string { return core.BackendNames() }

// Paper constants.
const (
	// PaperFTargetFLOPs is the §V FLOPs constraint (1.15 MFLOPs).
	PaperFTargetFLOPs = compress.PaperFTargetFLOPs
	// PaperSTargetBytes is the §V weight-size constraint (16 KB).
	PaperSTargetBytes = compress.PaperSTargetBytes
)

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// FromImageData wraps a CHW float32 pixel slice (3×32×32 = 3072 values in
// [0, 1]) as an image tensor suitable for Network.InferTo. A slice of
// any other length is rejected with an error naming the expected shape
// (it used to panic deep inside the tensor layer).
func FromImageData(data []float32) (*Tensor, error) {
	want := dataset.Channels * dataset.Height * dataset.Width
	if len(data) != want {
		return nil, fmt.Errorf("ehinfer: image data has %d values, want %d (%d×%d×%d CHW)",
			len(data), want, dataset.Channels, dataset.Height, dataset.Width)
	}
	return tensor.FromSlice(data, dataset.Channels, dataset.Height, dataset.Width), nil
}

// LeNetEE builds the paper's multi-exit LeNet (four conv layers, two
// early exits) for 32×32×3 inputs. Pass nil to skip weight init.
func LeNetEE(rng *RNG) *Network { return multiexit.LeNetEE(rng) }

// NetworkBuilder constructs custom multi-exit architectures; see
// multiexit.Builder for the fluent API.
type NetworkBuilder = multiexit.Builder

// NewNetworkBuilder starts a builder for inC×inH×inW inputs.
func NewNetworkBuilder(inC, inH, inW, classes int) *NetworkBuilder {
	return multiexit.NewBuilder(inC, inH, inW, classes)
}

// LoweredNetwork is a multi-exit network lowered to integer (int8-class)
// inference kernels — the artifact a real MCU deployment flashes.
type LoweredNetwork = fixed.LoweredNetwork

// LowerToInteger lowers a (possibly compressed) network to the integer
// pipeline with the given default bitwidths (8/8 when zero). Calibration
// images (CHW, optional) set each layer's requantization range from the
// observed float activations — strongly recommended for trained networks.
func LowerToInteger(net *Network, weightBits, actBits int, calibration ...*Tensor) (*LoweredNetwork, error) {
	return fixed.Lower(net, fixed.LowerConfig{
		WeightBits:  weightBits,
		ActBits:     actBits,
		Calibration: calibration,
	})
}

// LowerDeployed lowers a deployment — typically one restored from an
// artifact — to the integer pipeline using the deployment's pinned int8
// calibration scales, so the flashed network quantizes exactly like the
// deployment it came from even when the calibration images are long
// gone. Bitwidths 0 default to 8/8.
func LowerDeployed(d *Deployed, weightBits, actBits int) (*LoweredNetwork, error) {
	return fixed.Lower(d.Net, fixed.LowerConfig{
		WeightBits: weightBits,
		ActBits:    actBits,
		Scales:     d.Int8Calibration,
	})
}

// TrainNetwork jointly trains all exits on a dataset.
func TrainNetwork(net *Network, train *Dataset, cfg TrainConfig) (float64, error) {
	return multiexit.Train(net, train, cfg)
}

// EvalExits returns per-exit accuracy on a dataset.
func EvalExits(net *Network, set *Dataset) []float64 {
	return multiexit.EvalExits(net, set)
}

// SynthCIFAR generates disjoint train/test SynthCIFAR sets.
func SynthCIFAR(cfg SynthConfig, trainN, testN int) (train, test *Dataset) {
	return dataset.TrainTest(cfg, trainN, testN)
}

// NewSurrogate builds the calibrated accuracy surrogate for a network
// (nil accuracies select the paper's anchors for 3-exit networks).
func NewSurrogate(net *Network, fullAcc []float64) (*Surrogate, error) {
	return accmodel.New(net, fullAcc)
}

// ApplyPolicy compresses a network in place (prune + quantize).
func ApplyPolicy(net *Network, p *Policy) error { return compress.Apply(net, p) }

// UniformPolicy builds a same-everywhere compression policy.
func UniformPolicy(net *Network, preserve float64, weightBits, actBits int) *Policy {
	return compress.Uniform(net, preserve, weightBits, actBits)
}

// FullPrecision builds the identity (no-compression) policy.
func FullPrecision(net *Network) *Policy { return compress.FullPrecision(net) }

// Fig1bUniform returns the uniform reference policy of Fig. 1b.
func Fig1bUniform(net *Network) *Policy { return compress.Fig1bUniform(net) }

// Fig1bNonuniform returns the nonuniform reference policy of Fig. 1b.
func Fig1bNonuniform() *Policy { return compress.Fig1bNonuniform() }

// SearchCompression runs the paper's dual-agent DDPG compression search.
//
// Deprecated: use Session.SearchCompression, which takes a context so a
// multi-minute search can be canceled between episodes.
func SearchCompression(net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.RL(context.Background(), net, sur, cfg)
}

// SearchCompressionRandom is the random-search ablation baseline.
//
// Deprecated: use Session.SearchCompressionRandom.
func SearchCompressionRandom(net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.Random(context.Background(), net, sur, cfg)
}

// SearchCompressionAnnealing is the simulated-annealing ablation.
//
// Deprecated: use Session.SearchCompressionAnnealing.
func SearchCompressionAnnealing(net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.Annealing(context.Background(), net, sur, cfg)
}

// SyntheticSolarTrace generates a diurnal solar harvesting trace.
func SyntheticSolarTrace(cfg SolarConfig) *Trace { return energy.SyntheticSolarTrace(cfg) }

// SyntheticKineticTrace generates a bursty kinetic harvesting trace.
func SyntheticKineticTrace(cfg KineticConfig) *Trace { return energy.SyntheticKineticTrace(cfg) }

// UniformSchedule draws n events uniformly over the trace duration.
func UniformSchedule(n, duration, classes int, seed uint64) *Schedule {
	return energy.UniformSchedule(n, duration, classes, seed)
}

// BurstySchedule draws events in activity bursts.
func BurstySchedule(n, duration, classes int, meanBurst float64, seed uint64) *Schedule {
	return energy.BurstySchedule(n, duration, classes, meanBurst, seed)
}

// MSP432 returns the paper's target device model.
func MSP432() *Device { return mcu.MSP432() }

// DefaultScenario returns the paper's §V experimental setup.
func DefaultScenario(seed uint64) *Scenario { return core.DefaultScenario(seed) }

// BuildDeployed compresses LeNet-EE with a policy and packages it with
// surrogate accuracies for the runtime.
func BuildDeployed(policy *Policy, seed uint64) (*Deployed, error) {
	return core.BuildDeployed(policy, seed)
}

// NewDeployed packages an already-compressed network with known per-exit
// accuracies.
func NewDeployed(net *Network, exitAccs []float64) (*Deployed, error) {
	return core.NewDeployed(net, exitAccs)
}

// NewRuntime builds the intermittent-inference runtime for a deployment.
func NewRuntime(d *Deployed, cfg RuntimeConfig) (*Runtime, error) {
	return core.NewRuntime(d, cfg)
}

// RunProposed runs the paper's proposed runtime alone (no baselines) on
// a scenario — the single-system building block behind CompareSystems
// and the experiment engine. It is the natural way to exercise a
// deployment restored from an artifact (Session.Deploy): the scenario's
// TestSet switches it to empirical mode where the network actually
// executes on cfg.Backend.
func RunProposed(ctx context.Context, sc *Scenario, d *Deployed, cfg CompareConfig) (*Report, error) {
	return core.RunProposed(ctx, sc, d, cfg)
}

// CompareSystems runs ours plus the three baselines on a scenario.
//
// Deprecated: use Session.CompareSystems, which takes a context so the
// comparison can be canceled between systems and training episodes.
func CompareSystems(sc *Scenario, d *Deployed, cfg CompareConfig) ([]SystemRow, error) {
	return core.CompareSystems(context.Background(), sc, d, cfg)
}

// LearningCurve runs the Fig. 7a runtime-adaptation experiment.
//
// Deprecated: use Session.LearningCurve, which takes a context checked
// between episodes.
func LearningCurve(sc *Scenario, d *Deployed, episodes int) (qcurve, staticCurve []float64, err error) {
	return core.LearningCurve(context.Background(), sc, d, episodes)
}

// ExitUsage runs the Fig. 7b exit-histogram experiment.
//
// Deprecated: use Session.ExitUsage, which takes a context checked
// between warm-up episodes.
func ExitUsage(sc *Scenario, d *Deployed, warmup int) (qhist, shist []int, qproc, sproc int, err error) {
	return core.ExitUsage(context.Background(), sc, d, warmup)
}

// AllBaselines returns SonicNet, SpArSeNet, and LeNet-Cifar.
func AllBaselines() []Baseline { return baselines.All() }

// RunBaseline simulates a single-exit baseline on a scenario's trace and
// schedule.
func RunBaseline(b Baseline, sc *Scenario, seed uint64) (*Report, error) {
	return core.RunBaseline(b, sc.Trace, sc.Schedule, core.BaselineConfig{
		Device:  sc.Device,
		Storage: sc.Storage,
		Seed:    seed,
	})
}
