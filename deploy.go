package ehinfer

import (
	"fmt"
	"io"

	"repro/internal/artifact"
	"repro/internal/energy"
	"repro/internal/exper"
)

// DeploymentBundle is a versioned, self-describing deployment artifact:
// the unit of the paper's "compress once, flash once, run intermittently
// forever" workflow. It round-trips a Deployed end to end — architecture,
// compressed weights, per-exit accuracies, pinned int8 calibration
// scales, default backend — plus the compression policy it was built
// with. A loaded bundle produces bit-identical episode reports to the
// in-process deployment it was saved from.
type DeploymentBundle = artifact.Bundle

// ArtifactFormatVersion is the artifact wire-format version this build
// writes and reads. Decoding any other version is a strict error; see
// internal/artifact for the format and version policy.
const ArtifactFormatVersion = artifact.FormatVersion

// ArtifactOption customizes SaveDeployed.
type ArtifactOption func(*DeploymentBundle)

// WithArtifactName labels the artifact (shown by tools and the ehserved
// artifact listing).
func WithArtifactName(name string) ArtifactOption {
	return func(b *DeploymentBundle) { b.Name = name }
}

// WithArtifactPolicy records the compression policy the deployment was
// built with — provenance that also lets the artifact's policy be
// reapplied elsewhere.
func WithArtifactPolicy(p *Policy) ArtifactOption {
	return func(b *DeploymentBundle) { b.Policy = p }
}

// SaveDeployed writes the deployment to path as a versioned artifact.
// Everything the runtime consumes travels with it: set the deployment's
// DefaultBackend and pinned int8 calibration (Deployed.BindInt8Calibration)
// before saving to make the artifact self-sufficient on every backend.
func SaveDeployed(path string, d *Deployed, opts ...ArtifactOption) error {
	b := &DeploymentBundle{Deployed: d}
	for _, o := range opts {
		o(b)
	}
	return artifact.WriteFile(path, b)
}

// LoadDeployed reads a deployment artifact from path. Decoding is
// strict: unknown format versions, truncated tensor sections, shape
// mismatches, and trailing bytes are errors, never best-effort repairs.
func LoadDeployed(path string) (*DeploymentBundle, error) {
	return artifact.ReadFile(path)
}

// EncodeDeployed writes a bundle to a stream (the form the ehserved
// artifact endpoints speak); SaveDeployed is the file-path convenience.
func EncodeDeployed(w io.Writer, b *DeploymentBundle) error {
	return artifact.Encode(w, b)
}

// DecodeDeployed reads a bundle from a stream with the same strict
// error contract as LoadDeployed.
func DecodeDeployed(r io.Reader) (*DeploymentBundle, error) {
	return artifact.Decode(r)
}

// Deploy loads a deployment artifact and returns its Deployed, ready
// for NewRuntime, CompareSystems, or a grid via PolicyFromDeployed /
// RegisterDeployment. The artifact's default backend rides along on the
// Deployed and applies whenever neither the caller nor the session
// names one.
func (s *Session) Deploy(path string) (*Deployed, error) {
	b, err := LoadDeployed(path)
	if err != nil {
		return nil, err
	}
	return b.Deployed, nil
}

// PolicyFromDeployed wraps a pre-built deployment (e.g. a loaded
// artifact) as a grid policy-axis value under the given name.
func PolicyFromDeployed(name string, d *Deployed) PolicySpec {
	return exper.PolicyFromDeployed(name, d)
}

// PolicyFromArtifactFile loads a deployment artifact and wraps it as a
// grid policy-axis value named "artifact:<bundle name>" — the one-call
// path the CLI tools' -deployed flags use. The returned spec's Name is
// also the human-readable label to report.
func PolicyFromArtifactFile(path string) (PolicySpec, error) {
	bundle, err := LoadDeployed(path)
	if err != nil {
		return PolicySpec{}, err
	}
	name := bundle.Name
	if name == "" {
		name = "artifact"
	}
	return PolicyFromDeployed("artifact:"+name, bundle.Deployed), nil
}

// The open axis registries: every name a declarative GridSpec may
// reference — devices, compression policies, traces, event schedules,
// and pre-built deployments — resolves against a process-wide registry
// that ships with the paper's built-ins and accepts user registrations
// at runtime. Registration is concurrency-safe (an RWMutex guards every
// registry) and write-once: duplicate names are rejected so a spec can
// never silently change meaning. ehserved's /v1/registry reflects the
// live contents.

// TraceBuilder materializes a registered trace from a grid point's
// derived seed; see RegisterTrace.
type TraceBuilder = exper.TraceBuilder

// ScheduleBuilder generates a point's event schedule; see
// RegisterSchedule.
type ScheduleBuilder = exper.ScheduleBuilder

// RegisterDevice adds an MCU model usable by name in grid specs.
func RegisterDevice(name string, build func() *Device) error {
	return exper.RegisterDevice(name, build)
}

// RegisterPolicy adds a compression policy usable by name in grid
// specs. The constructor must be pure: the name keys the deployment
// cache.
func RegisterPolicy(name string, build func() *Policy) error {
	return exper.RegisterPolicy(name, build)
}

// RegisterTrace adds a named trace builder, referenced by a TraceSpec
// of kind "registered". TraceFromCSV adapts a measured CSV trace file.
func RegisterTrace(name string, build TraceBuilder) error {
	return exper.RegisterTrace(name, build)
}

// RegisterSchedule adds a named event-schedule generator, referenced by
// a grid's Schedule field.
func RegisterSchedule(name string, build ScheduleBuilder) error {
	return exper.RegisterSchedule(name, build)
}

// RegisterDeployment publishes a pre-built deployment (typically a
// loaded artifact) under a name any grid spec can use as a policy axis
// value.
func RegisterDeployment(name string, d *Deployed) error {
	return exper.RegisterDeployment(name, d)
}

// RegisteredTrace references a trace registered under name as a grid
// axis value.
func RegisteredTrace(name string) TraceSpec { return exper.RegisteredTrace(name) }

// TraceFromCSV returns a RegisterTrace-compatible builder backed by a
// CSV trace file (as written by cmd/tracegen or energy.WriteTraceCSV).
// The file is parsed once and cached; the seed is ignored.
func TraceFromCSV(path string) TraceBuilder { return energy.TraceFromCSV(path) }

// DeployAndRegister is the one-call path from artifact file to grid
// axis: load, validate, and register under the given name.
func (s *Session) DeployAndRegister(name, path string) (*Deployed, error) {
	d, err := s.Deploy(path)
	if err != nil {
		return nil, err
	}
	if err := RegisterDeployment(name, d); err != nil {
		return nil, fmt.Errorf("ehinfer: %w", err)
	}
	return d, nil
}
