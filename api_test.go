package ehinfer

// Façade-level integration tests: the full public API exercised the way
// the README's quickstart does.

import (
	"math"
	"testing"
)

func TestQuickstartPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test skipped in -short")
	}
	sc := DefaultScenario(1)
	d, err := BuildDeployed(Fig1bNonuniform(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.WeightBytes > PaperSTargetBytes {
		t.Fatalf("deployed weights %d B exceed the paper's 16 KB budget", d.WeightBytes)
	}
	rows, err := CompareSystems(sc, d, CompareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].System != "Our Approach" {
		t.Fatalf("row 0 is %q", rows[0].System)
	}
	if !(rows[0].IEpmJ > rows[1].IEpmJ && rows[0].IEpmJ > rows[2].IEpmJ && rows[0].IEpmJ > rows[3].IEpmJ) {
		t.Fatal("our approach must lead IEpmJ (the paper's headline result)")
	}
}

func TestFacadeConstructors(t *testing.T) {
	net := LeNetEE(NewRNG(2))
	if net.NumExits() != 3 {
		t.Fatal("LeNetEE must have 3 exits")
	}
	if _, err := NewSurrogate(net, nil); err != nil {
		t.Fatal(err)
	}
	if p := UniformPolicy(net, 0.5, 4, 4); len(p.Layers) != 11 {
		t.Fatal("uniform policy must cover the 11 compressible layers")
	}
	tr := SyntheticSolarTrace(SolarConfig{Seconds: 100, Seed: 1})
	if tr.Duration() != 100 {
		t.Fatal("trace duration wrong")
	}
	kt := SyntheticKineticTrace(KineticConfig{Seconds: 100, Seed: 1})
	if kt.Duration() != 100 {
		t.Fatal("kinetic trace duration wrong")
	}
	if s := UniformSchedule(10, 100, 10, 1); s.Len() != 10 {
		t.Fatal("schedule length wrong")
	}
	if s := BurstySchedule(10, 100, 10, 3, 1); s.Len() != 10 {
		t.Fatal("bursty schedule length wrong")
	}
	if MSP432().EnergyPerMFLOP != 1.5 {
		t.Fatal("device constant wrong")
	}
	if len(AllBaselines()) != 3 {
		t.Fatal("baseline count wrong")
	}
}

func TestFacadeTrainingPath(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	train, test := SynthCIFAR(SynthConfig{Seed: 21, NoiseStd: 0.03, Jitter: 0.05}, 150, 60)
	net := LeNetEE(NewRNG(31))
	if _, err := TrainNetwork(net, train, TrainConfig{Epochs: 2, BatchSize: 25, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	accs := EvalExits(net, test)
	if len(accs) != 3 {
		t.Fatal("per-exit accuracies missing")
	}
	for _, a := range accs {
		if math.IsNaN(a) || a < 0 || a > 1 {
			t.Fatalf("implausible accuracy %v", a)
		}
	}
}

func TestFacadeSearchPath(t *testing.T) {
	if testing.Short() {
		t.Skip("search test skipped in -short")
	}
	sc := DefaultScenario(3)
	net := LeNetEE(NewRNG(3))
	sur, err := NewSurrogate(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchCompressionRandom(net, sur, SearchConfig{
		Episodes: 25, Trace: sc.Trace, Schedule: sc.Schedule, Storage: sc.Storage, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 25 {
		t.Fatalf("episodes %d", res.Episodes)
	}
}

func TestFacadeBaselineRun(t *testing.T) {
	sc := DefaultScenario(4)
	rep, err := RunBaseline(AllBaselines()[2], sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events() != 500 {
		t.Fatalf("events %d", rep.Events())
	}
	if rep.System != "LeNet-Cifar" {
		t.Fatalf("system %q", rep.System)
	}
}

func TestIncrementalAPIRoundTrip(t *testing.T) {
	net := LeNetEE(NewRNG(5))
	img := NewRNGImage(6)
	st := net.InferTo(img, 0)
	if c := st.Confidence(); c < 0 || c > 1 {
		t.Fatalf("confidence %v", c)
	}
	st2 := net.Resume(st, 2)
	direct := net.InferTo(img, 2)
	if st2.Logits.L2Distance(direct.Logits) > 1e-4 {
		t.Fatal("facade incremental inference diverges from direct")
	}
}

// NewRNGImage builds a random test image through the public tensor API.
func NewRNGImage(seed uint64) *Tensor {
	rng := NewRNG(seed)
	img := make([]float32, 3*32*32)
	for i := range img {
		img[i] = rng.Float32()
	}
	t, err := FromImageData(img)
	if err != nil {
		panic(err)
	}
	return t
}
