package ehinfer_test

// Godoc examples: compile-checked documentation for the main API flows.

import (
	"fmt"

	ehinfer "repro"
)

// ExampleLeNetEE shows the paper's architecture accounting: per-exit
// FLOPs and total weight storage of the uncompressed LeNet-EE.
func ExampleLeNetEE() {
	net := ehinfer.LeNetEE(nil)
	for i := 0; i < net.NumExits(); i++ {
		fmt.Printf("exit %d: %.4f MFLOPs\n", i+1, float64(net.ExitFLOPs(i))/1e6)
	}
	fmt.Printf("weights: %.1f KB\n", float64(net.WeightBytes())/1024)
	// Output:
	// exit 1: 0.4414 MFLOPs
	// exit 2: 1.2572 MFLOPs
	// exit 3: 1.6383 MFLOPs
	// weights: 583.6 KB
}

// ExampleApplyPolicy compresses the network with the nonuniform reference
// policy and shows that it meets the paper's deployment constraints.
func ExampleApplyPolicy() {
	net := ehinfer.LeNetEE(ehinfer.NewRNG(1))
	if err := ehinfer.ApplyPolicy(net, ehinfer.Fig1bNonuniform()); err != nil {
		panic(err)
	}
	fmt.Printf("fits 16 KB: %v\n", net.WeightBytes() <= ehinfer.PaperSTargetBytes)
	fmt.Printf("fits 1.15 MFLOPs: %v\n", net.ModelFLOPs() <= ehinfer.PaperFTargetFLOPs)
	// Output:
	// fits 16 KB: true
	// fits 1.15 MFLOPs: true
}

// ExampleNewSurrogate predicts per-exit accuracy for a compression policy
// without retraining.
func ExampleNewSurrogate() {
	net := ehinfer.LeNetEE(nil)
	sur, err := ehinfer.NewSurrogate(net, nil)
	if err != nil {
		panic(err)
	}
	accs := sur.ExitAccuracies(ehinfer.FullPrecision(net))
	fmt.Printf("full precision: %.1f%% / %.1f%% / %.1f%%\n", 100*accs[0], 100*accs[1], 100*accs[2])
	// Output:
	// full precision: 64.9% / 72.0% / 73.0%
}

// ExampleNetwork_Resume demonstrates the paper's incremental inference:
// suspend at an early exit, then resume to a deeper one without
// recomputing the shared trunk.
func ExampleNetwork_Resume() {
	net := ehinfer.LeNetEE(ehinfer.NewRNG(2))
	img := make([]float32, 3*32*32)
	rng := ehinfer.NewRNG(3)
	for i := range img {
		img[i] = rng.Float32()
	}
	t, err := ehinfer.FromImageData(img)
	if err != nil {
		panic(err)
	}
	state := net.InferTo(t, 0)   // cheap early exit
	state = net.Resume(state, 2) // refine to the final exit
	fmt.Println("reached exit:", state.Exit+1)
	// Output:
	// reached exit: 3
}

// ExampleNewNetworkBuilder defines a custom two-exit architecture with
// the fluent builder.
func ExampleNewNetworkBuilder() {
	b := ehinfer.NewNetworkBuilder(3, 32, 32, 10)
	b.Conv("c1", 8, 5, 1, 0).ReLU().MaxPool(2, 2)
	b.Exit("early", 32)
	b.Conv("c2", 16, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("final", 0)
	net, err := b.Build(ehinfer.NewRNG(4))
	if err != nil {
		panic(err)
	}
	fmt.Println("exits:", net.NumExits())
	// Output:
	// exits: 2
}

// ExampleSyntheticSolarTrace generates a harvesting trace and inspects
// its statistics.
func ExampleSyntheticSolarTrace() {
	trace := ehinfer.SyntheticSolarTrace(ehinfer.SolarConfig{
		Seconds:   3600,
		PeakPower: 0.03,
		Seed:      5,
	})
	fmt.Printf("duration: %d s\n", trace.Duration())
	fmt.Printf("harvestable: %.1f mJ\n", trace.TotalEnergy())
	// Output:
	// duration: 3600 s
	// harvestable: 53.3 mJ
}

// ExampleLowerToInteger lowers a network to the pure-integer MCU pipeline
// and runs inference with int8-class arithmetic.
func ExampleLowerToInteger() {
	net := ehinfer.LeNetEE(ehinfer.NewRNG(6))
	lowered, err := ehinfer.LowerToInteger(net, 8, 8)
	if err != nil {
		panic(err)
	}
	img := make([]float32, 3*32*32)
	rng := ehinfer.NewRNG(7)
	for i := range img {
		img[i] = rng.Float32()
	}
	t, err := ehinfer.FromImageData(img)
	if err != nil {
		panic(err)
	}
	st, err := lowered.InferTo(t, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("classes scored:", len(st.Logits))
	// Output:
	// classes scored: 10
}
