package ehinfer

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// inferDeployed builds a small deployment for the Session.Infer tests.
func inferDeployed(t testing.TB) *Deployed {
	t.Helper()
	d, err := NewSession(WithSeed(5)).BuildDeployed(Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// inferInput returns a deterministic valid 3072-value input.
func inferInput(seed uint64) []float32 {
	rng := NewRNG(seed)
	in := make([]float32, 3072)
	for i := range in {
		in[i] = rng.Float32()
	}
	return in
}

// TestSessionInfer covers the public online-inference API: defaults,
// per-exit profile, batch/single parity, and option handling.
func TestSessionInfer(t *testing.T) {
	s := NewSession()
	d := inferDeployed(t)
	ctx := context.Background()

	in := inferInput(1)
	pred, err := s.Infer(ctx, d, in)
	if err != nil {
		t.Fatal(err)
	}
	exits := d.Net.NumExits()
	if pred.Exit != exits-1 || pred.Backend != "plan" {
		t.Fatalf("default inference: exit %d backend %q", pred.Exit, pred.Backend)
	}
	if len(pred.ExitConfidences) != exits || len(pred.ExitClasses) != exits {
		t.Fatalf("profile lengths %d/%d", len(pred.ExitConfidences), len(pred.ExitClasses))
	}
	if pred.Class != pred.ExitClasses[pred.Exit] || pred.Confidence != pred.ExitConfidences[pred.Exit] {
		t.Fatal("prediction does not match its own profile")
	}

	// Batch answers must match single-input answers image for image.
	inputs := [][]float32{in, inferInput(2), inferInput(3)}
	preds, err := s.InferBatch(ctx, d, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		solo, err := s.Infer(ctx, d, in)
		if err != nil {
			t.Fatal(err)
		}
		if preds[i].Class != solo.Class || preds[i].Confidence != solo.Confidence {
			t.Fatalf("input %d: batched (%d, %v) vs solo (%d, %v)",
				i, preds[i].Class, preds[i].Confidence, solo.Class, solo.Confidence)
		}
	}

	// Options: exit bound and threshold.
	bounded, err := s.Infer(ctx, d, in, InferToExit(0))
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Exit != 0 || len(bounded.ExitConfidences) != 1 {
		t.Fatalf("exit bound 0: %+v", bounded)
	}
	eager, err := s.Infer(ctx, d, in, InferWithThreshold(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if eager.Exit != 0 {
		t.Fatalf("tiny threshold took exit %d", eager.Exit)
	}
}

// TestSessionInferValidation: malformed inputs come back as errors that
// name the expected shape, and a canceled context stops a batch.
func TestSessionInferValidation(t *testing.T) {
	s := NewSession()
	d := inferDeployed(t)
	ctx := context.Background()

	if _, err := s.Infer(ctx, d, make([]float32, 7)); err == nil || !strings.Contains(err.Error(), "3072") {
		t.Fatalf("short input: %v", err)
	}
	bad := inferInput(1)
	bad[5] = float32(1e38)
	bad[5] *= 10 // +Inf
	if _, err := s.Infer(ctx, d, bad); err == nil || !strings.Contains(err.Error(), "finite") {
		t.Fatalf("inf input: %v", err)
	}
	if _, err := s.Infer(ctx, nil, inferInput(1)); err == nil {
		t.Fatal("nil deployment accepted")
	}
	if _, err := s.Infer(ctx, d, inferInput(1), InferToExit(99)); err == nil {
		t.Fatal("out-of-range exit accepted")
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.InferBatch(canceled, d, [][]float32{inferInput(1)}); err != context.Canceled {
		t.Fatalf("canceled batch: %v", err)
	}
}

// TestSessionInferBackendPreference: the session's WithBackend choice
// rides through to Infer, and the model cache keeps one executor per
// deployment.
func TestSessionInferBackendPreference(t *testing.T) {
	d := inferDeployed(t)
	ctx := context.Background()

	i8, err := NewSession(WithBackend(BackendInt8)).Infer(ctx, d, inferInput(1))
	if err != nil {
		t.Fatal(err)
	}
	if i8.Backend != "int8" {
		t.Fatalf("backend %q, want int8", i8.Backend)
	}

	s := NewSession()
	if _, err := s.Infer(ctx, d, inferInput(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(ctx, d, inferInput(2)); err != nil {
		t.Fatal(err)
	}
	s.models.mu.Lock()
	cached := len(s.models.m)
	s.models.mu.Unlock()
	if cached != 1 {
		t.Fatalf("model cache holds %d entries, want 1", cached)
	}
}

// TestSessionInferConcurrentSameDeployment hammers one deployment from
// many goroutines — the (-race) gate on Model's pooled execution state:
// a prediction must never be corrupted by a concurrent call.
func TestSessionInferConcurrentSameDeployment(t *testing.T) {
	s := NewSession()
	d := inferDeployed(t)
	ctx := context.Background()
	in := inferInput(11)
	want, err := s.Infer(ctx, d, in, InferWithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				got, err := s.Infer(ctx, d, in, InferWithThreshold(0.5))
				if err != nil {
					t.Error(err)
					return
				}
				if got.Class != want.Class || got.Exit != want.Exit || got.Confidence != want.Confidence {
					t.Errorf("concurrent answer (%d, %d, %v) differs from solo (%d, %d, %v)",
						got.Class, got.Exit, got.Confidence, want.Class, want.Exit, want.Confidence)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSessionInferThresholdOnly: giving only a threshold must keep the
// deepest-exit bound (the zero-value-Exit footgun the functional
// options exist to prevent).
func TestSessionInferThresholdOnly(t *testing.T) {
	s := NewSession()
	d := inferDeployed(t)
	pred, err := s.Infer(context.Background(), d, inferInput(4), InferWithThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.ExitConfidences) != d.Net.NumExits() {
		t.Fatalf("threshold-only options computed %d exits, want all %d",
			len(pred.ExitConfidences), d.Net.NumExits())
	}
}
