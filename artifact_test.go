package ehinfer

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mcu"
	"repro/internal/tensor"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

const goldenArtifactPath = "testdata/golden_two_exit.ehar"

// goldenBundle is the canonical format-pinning artifact: a compact
// builder-made two-exit network (so the checked-in file stays small —
// the full LeNet-EE path is covered by TestSaveLoadRunParity),
// compressed with a uniform policy, int8 calibration pinned from fixed
// random images, int8 default backend. Everything is a pure function of
// the constants below, so the encoded bytes are reproducible on any
// machine; every optional manifest field is populated.
func goldenBundle(t testing.TB) *DeploymentBundle {
	t.Helper()
	b := NewNetworkBuilder(1, 16, 16, 4)
	b.Conv("c1", 4, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e1", 0)
	b.Conv("c2", 8, 3, 1, 1).ReLU().MaxPool(2, 2)
	b.Exit("e2", 8)
	net, err := b.Build(NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	policy := UniformPolicy(net, 0.5, 6, 8)
	if err := ApplyPolicy(net, policy); err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployed(net, []float64{0.61, 0.73})
	if err != nil {
		t.Fatal(err)
	}
	d.DefaultBackend = BackendInt8
	rng := NewRNG(9)
	var imgs []*Tensor
	for i := 0; i < 4; i++ {
		img := make([]float32, 16*16)
		for j := range img {
			img[j] = rng.Float32()
		}
		imgs = append(imgs, tensor.FromSlice(img, 1, 16, 16))
	}
	d.BindInt8Calibration(imgs)
	return &DeploymentBundle{Name: "golden-two-exit", Deployed: d, Policy: policy}
}

// TestGoldenArtifact pins the wire format: the checked-in artifact must
// decode, match the canonical in-process build bit-for-bit, and
// re-encode byte-identically. Regenerate with `go test -run Golden .
// -update` after a deliberate format-version bump.
func TestGoldenArtifact(t *testing.T) {
	want := goldenBundle(t)
	var buf bytes.Buffer
	if err := EncodeDeployed(&buf, want); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenArtifactPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenArtifactPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenArtifactPath, buf.Len())
	}
	data, err := os.ReadFile(goldenArtifactPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatalf("golden artifact drifted from the canonical build (%d vs %d bytes); "+
			"if the format changed deliberately, bump FormatVersion and run -update",
			len(data), buf.Len())
	}
	got, err := LoadDeployed(goldenArtifactPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Deployed.WeightBytes != want.Deployed.WeightBytes ||
		got.Deployed.DefaultBackend != BackendInt8 || got.Policy == nil {
		t.Fatal("golden artifact decoded with wrong contents")
	}
}

// parityScenario builds a small deterministic empirical scenario (events
// carry real samples, so the network actually executes) on a device
// roomy enough for the full-precision test network.
func parityScenario(t *testing.T) (*Scenario, *Deployed) {
	t.Helper()
	_, test := SynthCIFAR(SynthConfig{Seed: 41}, 10, 60)
	net := LeNetEE(NewRNG(41))
	d, err := NewDeployed(net, EvalExits(net, test))
	if err != nil {
		t.Fatal(err)
	}
	bigDev := mcu.MSP432()
	bigDev.Name = "MSP432-XL"
	bigDev.WeightStorageBytes = 1 << 20
	sc, err := NewScenario().
		Seed(41).
		Solar(0.5, 0.06).
		Events(40, 10).
		Device(bigDev).
		Capacitor(4).
		Empirical(test).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return sc, d
}

// TestSaveLoadRunParity is the round-trip guarantee of the artifact
// redesign: SaveDeployed → LoadDeployed → RunProposed produces a
// byte-identical report JSON to the never-serialized deployment, on
// every inference backend — plan, legacy, and int8.
func TestSaveLoadRunParity(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical parity test skipped in -short")
	}
	sc, d := parityScenario(t)
	// Pin int8 calibration so the scales travel through the artifact
	// rather than being re-derived (either way must agree; pinning
	// exercises the persisted-scale path).
	var calib []*Tensor
	for i := 0; i < 6; i++ {
		calib = append(calib, sc.TestSet.Samples[i].Image)
	}
	d.BindInt8Calibration(calib)

	path := filepath.Join(t.TempDir(), "parity.ehar")
	if err := SaveDeployed(path, d, WithArtifactName("parity")); err != nil {
		t.Fatal(err)
	}
	session := NewSession()
	restored, err := session.Deploy(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, backend := range []InferBackend{BackendPlan, BackendLegacy, BackendInt8} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			cfg := CompareConfig{WarmupEpisodes: 2, Backend: backend}
			inProc, err := RunProposed(context.Background(), sc, d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fromArtifact, err := RunProposed(context.Background(), sc, restored, cfg)
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(inProc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(fromArtifact)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("backend %v: restored deployment's report diverges from the in-process one", backend)
			}
		})
	}
}

// TestInt8FastPinnedScalesRoundTrip: calibration scales pinned before
// SaveDeployed must travel through the .ehar into the restored
// deployment's packed-weight fast plan. With identical scales the
// integer pipeline is deterministic, so the restored plan's logits must
// match the in-process plan bit for bit — the fast backend's
// "compress once, flash once" contract.
func TestInt8FastPinnedScalesRoundTrip(t *testing.T) {
	sc, d := parityScenario(t)
	var calib []*Tensor
	for i := 0; i < 6; i++ {
		calib = append(calib, sc.TestSet.Samples[i].Image)
	}
	d.BindInt8Calibration(calib)

	path := filepath.Join(t.TempDir(), "fastpin.ehar")
	if err := SaveDeployed(path, d, WithArtifactName("fastpin")); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSession().Deploy(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Int8Calibration == nil {
		t.Fatal("pinned calibration scales did not survive the artifact round-trip")
	}

	orig, err := d.Int8FastPlanPinned()
	if err != nil {
		t.Fatal(err)
	}
	rest, err := restored.Int8FastPlanPinned()
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Int8Fast() || !rest.Int8Fast() {
		t.Fatal("pinned fast plans must carry the int8-fast flag")
	}
	oex, ost := orig.NewExec(), orig.NewState()
	rex, rst := rest.NewExec(), rest.NewState()
	last := d.Net.NumExits() - 1
	for i := 0; i < 8; i++ {
		img := sc.TestSet.Samples[i+10].Image
		oex.InferTo(ost, img, last)
		rex.InferTo(rst, img, last)
		for j, v := range ost.Logits() {
			if rst.Logits()[j] != v {
				t.Fatalf("image %d logit[%d]: restored %v vs in-process %v — pinned scales drifted",
					i, j, rst.Logits()[j], v)
			}
		}
	}
}

// TestArtifactDefaultBackendApplies: a config that names no backend runs
// the artifact's own default; naming one overrides it.
func TestArtifactDefaultBackendApplies(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical test skipped in -short")
	}
	sc, d := parityScenario(t)
	d.DefaultBackend = BackendInt8
	path := filepath.Join(t.TempDir(), "def.ehar")
	if err := SaveDeployed(path, d); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSession().Deploy(path)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(restored, RuntimeConfig{
		Storage: sc.Storage, Device: sc.Device, Seed: sc.Seed, TestSet: sc.TestSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendInt8 {
		t.Fatalf("runtime backend %v, want the artifact default int8", rt.Backend())
	}
	rt, err = NewRuntime(restored, RuntimeConfig{
		Storage: sc.Storage, Device: sc.Device, Seed: sc.Seed, TestSet: sc.TestSet,
		Backend: BackendLegacy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendLegacy {
		t.Fatalf("explicit backend must win, got %v", rt.Backend())
	}
}

// TestRegisteredDeploymentGrid drives the loaded-artifact-as-grid-axis
// path through the Session: RunGrid on a PolicyFromDeployed axis.
func TestRegisteredDeploymentGrid(t *testing.T) {
	d, err := NewSession(WithSeed(3)).BuildDeployed(Fig1bNonuniform())
	if err != nil {
		t.Fatal(err)
	}
	grid := SeedReplicationGrid(1, 20)
	grid.Policies = []PolicySpec{PolicyFromDeployed("artifact:test", d)}
	res, err := NewSession().RunGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if errs := res.Errs(); len(errs) != 0 {
		t.Fatalf("grid errors: %v", errs)
	}
}
