package ehinfer

import (
	"context"
	"errors"
	"iter"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/fleet"
	"repro/internal/search"
	"repro/internal/tensor"
)

var (
	errNilGrid  = errors.New("ehinfer: nil grid")
	errNilFleet = errors.New("ehinfer: nil fleet")
)

// Session is the stateful entry point of the public API: it owns the
// shared state that every long-running caller used to re-plumb by hand —
// the worker cap, the base seed all RNG streams derive from, the keyed
// deployment cache that stops repeated grids from rebuilding identical
// Deployed models, and the progress callback. A Session is cheap; create
// one per logical workload (a service typically keeps one for its whole
// lifetime). All methods are safe for concurrent use and every
// long-running method takes a context.Context for cancellation and
// deadlines — cancellation is cooperative (checked between grid points
// and training episodes) and never perturbs results that do complete.
type Session struct {
	workers  int
	seed     uint64
	backend  InferBackend
	cache    *exper.DeployCache
	progress func(ExperimentResult)

	// models caches per-deployment serving executors for Infer/InferBatch.
	models inferModels
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithWorkers caps the worker pool for grid runs (<= 0, the default,
// means one worker per core; negative values behave like 0).
func WithWorkers(n int) SessionOption {
	return func(s *Session) { s.workers = n }
}

// WithSeed sets the session's base seed (default 42). Session-derived
// RNGs and session-default scenarios flow from it; grids keep their own
// BaseSeed so a serialized grid replays identically in any session.
func WithSeed(seed uint64) SessionOption {
	return func(s *Session) { s.seed = seed }
}

// WithDeployedCache enables or disables the session's deployment cache
// (default enabled). With the cache on, repeated grids that share a
// (policy name, deploy seed) pair reuse one read-only Deployed model
// instead of rebuilding it per run.
func WithDeployedCache(enabled bool) SessionOption {
	return func(s *Session) {
		if enabled {
			if s.cache == nil {
				s.cache = exper.NewDeployCache()
			}
		} else {
			s.cache = nil
		}
	}
}

// WithBackend sets the session's default empirical-mode inference
// backend (unset resolves to BackendPlan, the compiled zero-allocation
// plan that is bit-identical to the legacy layer walk; BackendInt8
// selects the bit-exact fixed-point pipeline; BackendInt8Fast the
// packed-weight integer pipeline — fastest, statistically rather than
// bitwise faithful to the float plan). Grids or CompareConfigs that
// name their own Backend override it, and surrogate-mode runs — which
// never execute the network — ignore it entirely.
func WithBackend(b InferBackend) SessionOption {
	return func(s *Session) { s.backend = b }
}

// WithProgress registers a callback observing every completed grid point,
// across all of the session's grid runs. It may be called from any worker
// goroutine but never concurrently; completion order is scheduling-
// dependent, so treat it as progress telemetry only.
func WithProgress(fn func(ExperimentResult)) SessionOption {
	return func(s *Session) { s.progress = fn }
}

// NewSession builds a session with the given options.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{seed: 42, cache: exper.NewDeployCache()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Workers returns the resolved worker-pool cap for this session's grid
// runs.
func (s *Session) Workers() int { return s.engine().WorkerCount() }

// Seed returns the session's base seed.
func (s *Session) Seed() uint64 { return s.seed }

// CacheSize reports how many deployments the session's cache holds
// (0 when caching is disabled).
func (s *Session) CacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// NewRNG returns a deterministic generator for the given stream,
// derived from the session seed with the engine's stream-separation mix:
// distinct streams are statistically independent, and the same (session
// seed, stream) pair always yields the same generator.
func (s *Session) NewRNG(stream uint64) *RNG {
	return tensor.NewRNG(exper.DeriveSeed(s.seed, stream, 0))
}

// Scenario returns the paper's §V experimental setup seeded from the
// session.
func (s *Session) Scenario() *Scenario { return core.DefaultScenario(s.seed) }

// BuildDeployed compresses LeNet-EE with a policy and packages it with
// surrogate accuracies for the runtime, seeded from the session.
func (s *Session) BuildDeployed(policy *Policy) (*Deployed, error) {
	return core.BuildDeployed(policy, s.seed)
}

// Backend returns the session's default inference backend.
func (s *Session) Backend() InferBackend { return s.backend }

// engine builds a fresh engine carrying the session's shared state. The
// engine itself is stateless across runs; the cache is the shared part.
func (s *Session) engine() *ExperimentEngine {
	e := exper.NewEngine(s.workers)
	e.Cache = s.cache
	e.Backend = s.backend
	return e
}

// RunGrid executes every point of the grid on the session's worker pool
// and returns the collected results in enumeration order. Results are
// bit-identical at any worker count and identical to the free-standing
// engine path — the session adds cancellation, caching, and progress, not
// semantics.
//
// On cancellation RunGrid returns ctx.Err() together with a non-nil
// GridResult: completed points keep their rows (bit-identical to an
// uncancelled run), unreached points are marked Skipped.
func (s *Session) RunGrid(ctx context.Context, g *ExperimentGrid) (*GridResult, error) {
	if g == nil {
		return nil, errNilGrid
	}
	e := s.engine()
	e.OnResult = s.progress
	return e.RunContext(ctx, g)
}

// StartGrid launches the grid without waiting for it: the returned
// GridRun streams per-point results as workers finish them, enabling
// incremental reporting while the grid is still running. Always drain
// Results (or call Wait) to observe completion.
func (s *Session) StartGrid(ctx context.Context, g *ExperimentGrid) *GridRun {
	return s.startGrid(ctx, g, nil)
}

// ResumeGrid is StartGrid for a checkpointed run: completed maps point
// index to its already-finished result. Restored points are filled into
// the final GridResult verbatim and never re-run or re-streamed; only
// the remaining points execute. Because each point's RNG derives from
// (BaseSeed, Index, Seed) alone, the final result is byte-identical to
// an uninterrupted run's.
func (s *Session) ResumeGrid(ctx context.Context, g *ExperimentGrid, completed map[int]ExperimentResult) *GridRun {
	return s.startGrid(ctx, g, completed)
}

func (s *Session) startGrid(ctx context.Context, g *ExperimentGrid, completed map[int]ExperimentResult) *GridRun {
	if g == nil {
		r := &GridRun{ch: make(chan ExperimentResult), done: make(chan struct{})}
		r.err = errNilGrid
		close(r.ch)
		close(r.done)
		return r
	}
	// Buffering to the grid size lets the engine finish even if the
	// consumer abandons the stream after Wait.
	r := &GridRun{ch: make(chan ExperimentResult, g.Size()), done: make(chan struct{})}
	e := s.engine()
	e.Completed = completed
	progress := s.progress
	e.OnResult = func(res ExperimentResult) {
		if progress != nil {
			progress(res)
		}
		r.ch <- res
	}
	go func() {
		defer close(r.done)
		defer close(r.ch)
		r.res, r.err = e.RunContext(ctx, g)
	}()
	return r
}

// GridRun is an in-flight grid launched by Session.StartGrid: a stream of
// per-point results plus the final aggregate. One consumer should range
// over Results; any number may call Wait.
type GridRun struct {
	ch   chan ExperimentResult
	done chan struct{}
	res  *GridResult
	err  error
}

// Results returns a single-use iterator over per-point results in
// completion order (scheduling-dependent; each point's content is still
// deterministic). The sequence ends when the run finishes or is canceled;
// breaking out early is safe and does not block the run.
func (r *GridRun) Results() iter.Seq[ExperimentResult] {
	return func(yield func(ExperimentResult) bool) {
		for res := range r.ch {
			if !yield(res) {
				return
			}
		}
	}
}

// Wait blocks until the run finishes and returns the final GridResult in
// enumeration order — the same value a direct RunGrid call would have
// returned, streaming notwithstanding.
func (r *GridRun) Wait() (*GridResult, error) {
	<-r.done
	return r.res, r.err
}

// RunFleet runs a compiled fleet to completion on the session's worker
// cap and returns its result. Fleet results are bit-identical at any
// worker count; on cancellation the snapshots completed so far are
// returned alongside ctx.Err().
func (s *Session) RunFleet(ctx context.Context, f *Fleet) (*FleetResult, error) {
	if f == nil {
		return nil, errNilFleet
	}
	e := fleet.Engine{Workers: s.workers}
	return e.Run(ctx, f)
}

// StartFleet launches the fleet without waiting for it: the returned
// FleetRun streams aggregate snapshots as epochs complete. Always drain
// Snapshots (or call Wait) to observe completion.
func (s *Session) StartFleet(ctx context.Context, f *Fleet) *FleetRun {
	return s.startFleet(ctx, f, 0)
}

// ResumeFleet is StartFleet for a checkpointed run: the engine fast-
// forwards deterministically through the epochs before fromEpoch and
// streams only the snapshots from it on. The final result still holds
// every snapshot — byte-identical to an uninterrupted run's.
func (s *Session) ResumeFleet(ctx context.Context, f *Fleet, fromEpoch int) *FleetRun {
	return s.startFleet(ctx, f, fromEpoch)
}

func (s *Session) startFleet(ctx context.Context, f *Fleet, fromEpoch int) *FleetRun {
	if f == nil {
		r := &FleetRun{ch: make(chan FleetSnapshot), done: make(chan struct{})}
		r.err = errNilFleet
		close(r.ch)
		close(r.done)
		return r
	}
	// Buffering to the snapshot count lets the engine finish even if the
	// consumer abandons the stream after Wait.
	r := &FleetRun{ch: make(chan FleetSnapshot, f.SnapshotCount()), done: make(chan struct{})}
	e := fleet.Engine{
		Workers:    s.workers,
		StartEpoch: fromEpoch,
		OnSnapshot: func(snap FleetSnapshot) { r.ch <- snap },
	}
	go func() {
		defer close(r.done)
		defer close(r.ch)
		r.res, r.err = e.Run(ctx, f)
	}()
	return r
}

// FleetRun is an in-flight fleet launched by Session.StartFleet: a
// stream of epoch-ordered aggregate snapshots plus the final result.
// One consumer should range over Snapshots; any number may call Wait.
type FleetRun struct {
	ch   chan FleetSnapshot
	done chan struct{}
	res  *FleetResult
	err  error
}

// Snapshots returns a single-use iterator over the run's snapshots in
// epoch order. The sequence ends when the run finishes or is canceled;
// breaking out early is safe and does not block the run.
func (r *FleetRun) Snapshots() iter.Seq[FleetSnapshot] {
	return func(yield func(FleetSnapshot) bool) {
		for snap := range r.ch {
			if !yield(snap) {
				return
			}
		}
	}
}

// Wait blocks until the run finishes and returns the final FleetResult —
// the same value a direct RunFleet call would have returned.
func (r *FleetRun) Wait() (*FleetResult, error) {
	<-r.done
	return r.res, r.err
}

// RunProposed runs the proposed runtime alone on a scenario, honouring
// ctx between training episodes. The session's backend applies when the
// config leaves its Backend unset, exactly as in CompareSystems.
func (s *Session) RunProposed(ctx context.Context, sc *Scenario, d *Deployed, cfg CompareConfig) (*Report, error) {
	if cfg.Backend == core.BackendDefault {
		cfg.Backend = s.backend
	}
	return core.RunProposed(ctx, sc, d, cfg)
}

// CompareSystems runs ours plus the three baselines on a scenario,
// honouring ctx between systems and training episodes. The session's
// backend applies when the config leaves its Backend unset
// (BackendDefault); an explicit choice — including BackendPlan — wins.
func (s *Session) CompareSystems(ctx context.Context, sc *Scenario, d *Deployed, cfg CompareConfig) ([]SystemRow, error) {
	if cfg.Backend == core.BackendDefault {
		cfg.Backend = s.backend
	}
	return core.CompareSystems(ctx, sc, d, cfg)
}

// LearningCurve runs the Fig. 7a runtime-adaptation experiment,
// honouring ctx between episodes; on cancellation the curves built so far
// are returned alongside ctx.Err().
func (s *Session) LearningCurve(ctx context.Context, sc *Scenario, d *Deployed, episodes int) (qcurve, staticCurve []float64, err error) {
	return core.LearningCurve(ctx, sc, d, episodes)
}

// ExitUsage runs the Fig. 7b exit-histogram experiment, honouring ctx
// between warm-up episodes.
func (s *Session) ExitUsage(ctx context.Context, sc *Scenario, d *Deployed, warmup int) (qhist, shist []int, qproc, sproc int, err error) {
	return core.ExitUsage(ctx, sc, d, warmup)
}

// SearchCompression runs the paper's dual-agent DDPG compression search,
// honouring ctx between episodes; on cancellation the best-so-far result
// is returned alongside ctx.Err().
func (s *Session) SearchCompression(ctx context.Context, net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.RL(ctx, net, sur, cfg)
}

// SearchCompressionRandom is the random-search ablation baseline with
// session cancellation semantics.
func (s *Session) SearchCompressionRandom(ctx context.Context, net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.Random(ctx, net, sur, cfg)
}

// SearchCompressionAnnealing is the simulated-annealing ablation with
// session cancellation semantics.
func (s *Session) SearchCompressionAnnealing(ctx context.Context, net *Network, sur *Surrogate, cfg SearchConfig) (*SearchResult, error) {
	return search.Annealing(ctx, net, sur, cfg)
}
