package ehinfer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	ehinfer "repro"
	"repro/internal/batch"
	"repro/internal/serve"
)

// BenchmarkServerInferThroughput measures the online path end to end:
// concurrent HTTP clients posting single-image requests through JSON
// decode, validation, the micro-batching queue, and the batched plan
// executor. ns/op is per request under 8-way client concurrency — the
// server-side throughput number, not a kernel microbenchmark.
func BenchmarkServerInferThroughput(b *testing.B) {
	session := ehinfer.NewSession(ehinfer.WithWorkers(1))
	sv := serve.New(serve.WithSession(session), serve.WithBatchConfig(batch.Config{
		MaxBatch: 8,
		Window:   2 * time.Millisecond,
		QueueCap: 256,
	}))
	ts := httptest.NewServer(sv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sv.Shutdown(ctx)
	}()

	deployed, err := session.BuildDeployed(ehinfer.Fig1bNonuniform())
	if err != nil {
		b.Fatal(err)
	}
	var artifact bytes.Buffer
	if err := ehinfer.EncodeDeployed(&artifact, &ehinfer.DeploymentBundle{Name: "bench", Deployed: deployed}); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/artifacts", "application/octet-stream", &artifact)
	if err != nil {
		b.Fatal(err)
	}
	var uploaded struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&uploaded); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	rng := ehinfer.NewRNG(3)
	input := make([]float32, 3*32*32)
	for i := range input {
		input[i] = rng.Float32()
	}
	body, err := json.Marshal(map[string]any{"artifact": uploaded.ID, "input": input})
	if err != nil {
		b.Fatal(err)
	}

	const clients = 8
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %s", resp.Status)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
