package ehinfer

// Ablation benches for the design choices DESIGN.md calls out: exit-
// guided nonuniform compression, incremental inference, learned exit
// selection, and the choice of search algorithm.

import (
	"fmt"
	"testing"
)

// BenchmarkAblationUniformVsNonuniform deploys the uniform and nonuniform
// policies under the identical EH scenario and compares end-to-end IEpmJ —
// isolating the value of exit-guided compression (the uniform model also
// violates the 16 KB budget, so its row is the optimistic case).
func BenchmarkAblationUniformVsNonuniform(b *testing.B) {
	var uniIE, nonIE float64
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)

		non, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		nonRows, err := CompareSystems(sc, non, CompareConfig{})
		if err != nil {
			b.Fatal(err)
		}
		nonIE = nonRows[0].IEpmJ

		net := LeNetEE(NewRNG(42))
		uniRt, err := buildRuntimeForPolicy(sc, net, Fig1bUniform(net), 42)
		if err != nil {
			b.Fatal(err)
		}
		uniRep, err := runWarmed(uniRt, sc, 12)
		if err != nil {
			b.Fatal(err)
		}
		uniIE = uniRep.IEpmJ()
	}
	b.ReportMetric(nonIE, "IEpmJ-nonuniform")
	b.ReportMetric(uniIE, "IEpmJ-uniform")
	fmt.Printf("\n[ablation: compression] IEpmJ nonuniform %.3f vs uniform %.3f (%.2f×)\n",
		nonIE, uniIE, nonIE/uniIE)
}

func buildRuntimeForPolicy(sc *Scenario, net *Network, p *Policy, seed uint64) (*Runtime, error) {
	sur, err := NewSurrogate(net, nil)
	if err != nil {
		return nil, err
	}
	accs := sur.ExitAccuracies(p)
	if err := ApplyPolicy(net, p); err != nil {
		return nil, err
	}
	d, err := NewDeployed(net, accs)
	if err != nil {
		return nil, err
	}
	return NewRuntime(d, RuntimeConfig{
		Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: seed,
		SkipFitCheck: true, // the uniform arm exceeds 16 KB; this ablation isolates accuracy/energy effects
	})
}

func runWarmed(rt *Runtime, sc *Scenario, warmup int) (*Report, error) {
	for ep := 0; ep < warmup; ep++ {
		rt.SetExploration(0.3*float64(warmup-ep)/float64(warmup) + 0.01)
		if _, err := rt.Run(sc.Trace, sc.Schedule); err != nil {
			return nil, err
		}
	}
	rt.SetExploration(0.02)
	return rt.Run(sc.Trace, sc.Schedule)
}

// BenchmarkAblationNoIncremental disables incremental inference and
// measures the IEpmJ cost of losing the §IV second decision.
func BenchmarkAblationNoIncremental(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, disable := range []bool{false, true} {
			rt, err := NewRuntime(d, RuntimeConfig{
				Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage,
				Seed: 42, DisableIncremental: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := runWarmed(rt, sc, 12)
			if err != nil {
				b.Fatal(err)
			}
			if disable {
				without = rep.IEpmJ()
			} else {
				with = rep.IEpmJ()
			}
		}
	}
	b.ReportMetric(with, "IEpmJ-incremental")
	b.ReportMetric(without, "IEpmJ-no-incremental")
	fmt.Printf("\n[ablation: incremental inference] IEpmJ with %.3f vs without %.3f\n", with, without)
}

// BenchmarkAblationStaticVsQLearning compares the learned runtime against
// the static LUT at matched deployment (the Fig. 7 comparison as a single
// end-to-end number).
func BenchmarkAblationStaticVsQLearning(b *testing.B) {
	var qAcc, sAcc float64
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		d, err := BuildDeployed(Fig1bNonuniform(), 42)
		if err != nil {
			b.Fatal(err)
		}
		qrt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyQLearning, Device: sc.Device, Storage: sc.Storage, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		qrep, err := runWarmed(qrt, sc, 14)
		if err != nil {
			b.Fatal(err)
		}
		qAcc = qrep.AccuracyAllEvents()
		srt, err := NewRuntime(d, RuntimeConfig{Mode: PolicyStaticLUT, Device: sc.Device, Storage: sc.Storage, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		srep, err := srt.Run(sc.Trace, sc.Schedule)
		if err != nil {
			b.Fatal(err)
		}
		sAcc = srep.AccuracyAllEvents()
	}
	b.ReportMetric(qAcc, "acc-qlearning")
	b.ReportMetric(sAcc, "acc-static")
	fmt.Printf("\n[ablation: runtime policy] acc(all events) Q-learning %.1f%% vs static %.1f%% (paper: +10.2%% relative; measured %+.1f%%)\n",
		100*qAcc, 100*sAcc, 100*(qAcc/sAcc-1))
}

// BenchmarkAblationSearchers compares the DDPG search against random
// search and simulated annealing at an equal evaluation budget.
func BenchmarkAblationSearchers(b *testing.B) {
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		sc := DefaultScenario(42)
		cfg := SearchConfig{
			Episodes: 60,
			Trace:    sc.Trace,
			Schedule: sc.Schedule,
			Storage:  sc.Storage,
			Seed:     42,
		}
		for name, fn := range map[string]func(*Network, *Surrogate, SearchConfig) (*SearchResult, error){
			"ddpg":      SearchCompression,
			"random":    SearchCompressionRandom,
			"annealing": SearchCompressionAnnealing,
		} {
			net := LeNetEE(NewRNG(3))
			sur, err := NewSurrogate(net, nil)
			if err != nil {
				b.Fatal(err)
			}
			res, err := fn(net, sur, cfg)
			if err != nil && res.Policy == nil {
				results[name] = 0
				continue
			}
			results[name] = res.Racc
		}
	}
	b.ReportMetric(results["ddpg"], "Racc-ddpg")
	b.ReportMetric(results["random"], "Racc-random")
	b.ReportMetric(results["annealing"], "Racc-annealing")
	fmt.Printf("\n[ablation: search] Racc at 60 evaluations — DDPG %.3f, random %.3f, annealing %.3f\n",
		results["ddpg"], results["random"], results["annealing"])
}
