// Package ehinfer is a Go reproduction of "Intermittent Inference with
// Nonuniformly Compressed Multi-Exit Neural Network for Energy Harvesting
// Powered Devices" (Wu et al., DAC 2020).
//
// The library provides, end to end:
//
//   - a multi-exit CNN (LeNet-EE: 4 conv layers, 2 early exits) with
//     training, per-exit inference, and suspend/resume incremental
//     inference (internal/multiexit, internal/nn, internal/tensor);
//   - power-trace-aware, exit-guided nonuniform compression — channel
//     pruning + mixed-precision linear quantization searched by dual
//     DDPG agents under FLOPs/size constraints (internal/compress,
//     internal/search, internal/ddpg, internal/accmodel);
//   - an energy-harvesting intermittent-execution simulator — solar and
//     kinetic traces, capacitor storage with turn-on/brown-out
//     hysteresis, an MSP432 cost model, checkpointed run-to-completion
//     execution for baselines (internal/energy, internal/mcu,
//     internal/intermittent);
//   - the runtime layer — tabular Q-learning exit selection plus the
//     incremental-inference decision (internal/qlearn, internal/core);
//   - the paper's baselines (SonicNet, SpArSeNet, LeNet-Cifar) and the
//     IEpmJ/accuracy/latency metrics (internal/baselines,
//     internal/metrics);
//   - the parallel experiment engine (internal/exper): declarative
//     scenario grids — energy trace × MCU device × compression policy ×
//     exit policy × seed — sharded across a goroutine worker pool with
//     per-point seed derivation, so grid results are bit-identical at
//     any worker count; cmd/sweep, cmd/paperbench, and cmd/ehsim all run
//     on it, and the tensor kernels underneath (row-band parallel
//     MatMul, pooled im2col-GEMM conv) spread single inferences across
//     cores as well.
//
// This package is the public façade: it re-exports the pieces a user
// composes and provides one-call constructors for the paper's standard
// experimental setup. The bench suite in bench_test.go regenerates every
// figure of the paper's evaluation; see EXPERIMENTS.md for paper-vs-
// measured values and DESIGN.md for the system inventory and the
// documented substitutions (synthetic dataset, synthetic solar trace,
// calibrated accuracy surrogate).
//
// # Quickstart
//
//	net := ehinfer.LeNetEE(ehinfer.NewRNG(1))
//	policy := ehinfer.Fig1bNonuniform()
//	deployed, _ := ehinfer.BuildDeployed(policy, 1)
//	sc := ehinfer.DefaultScenario(1)
//	rows, _ := ehinfer.CompareSystems(sc, deployed, ehinfer.CompareConfig{})
//	for _, r := range rows {
//		fmt.Printf("%s IEpmJ=%.2f\n", r.System, r.IEpmJ)
//	}
package ehinfer
