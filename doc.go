// Package ehinfer is a Go reproduction of "Intermittent Inference with
// Nonuniformly Compressed Multi-Exit Neural Network for Energy Harvesting
// Powered Devices" (Wu et al., DAC 2020).
//
// The library provides, end to end:
//
//   - a multi-exit CNN (LeNet-EE: 4 conv layers, 2 early exits) with
//     training, per-exit inference, and suspend/resume incremental
//     inference (internal/multiexit, internal/nn, internal/tensor);
//
//   - power-trace-aware, exit-guided nonuniform compression — channel
//     pruning + mixed-precision linear quantization searched by dual
//     DDPG agents under FLOPs/size constraints (internal/compress,
//     internal/search, internal/ddpg, internal/accmodel);
//
//   - an energy-harvesting intermittent-execution simulator — solar and
//     kinetic traces, capacitor storage with turn-on/brown-out
//     hysteresis, an MSP432 cost model, checkpointed run-to-completion
//     execution for baselines (internal/energy, internal/mcu,
//     internal/intermittent);
//
//   - the runtime layer — tabular Q-learning exit selection plus the
//     incremental-inference decision (internal/qlearn, internal/core);
//
//   - the paper's baselines (SonicNet, SpArSeNet, LeNet-Cifar) and the
//     IEpmJ/accuracy/latency metrics (internal/baselines,
//     internal/metrics);
//
//   - the parallel experiment engine (internal/exper): declarative
//     scenario grids — energy trace × MCU device × compression policy ×
//     exit policy × seed — sharded across a goroutine worker pool with
//     per-point seed derivation, so grid results are bit-identical at
//     any worker count; the tensor kernels underneath (row-band parallel
//     MatMul, pooled im2col-GEMM conv) spread single inferences across
//     cores as well;
//
//   - compiled inference plans (internal/plan): a deployment-time
//     compiler that turns the multi-exit network into a zero-allocation
//     program — precomputed shapes and conv geometry, a reusable
//     double-buffered activation arena, fused conv+bias+ReLU steps over
//     register-blocked kernels — with float32 output bit-identical to
//     the layer walk, plus two integer backends selectable via
//     Session.WithBackend, RuntimeConfig.Backend, a GridSpec's
//     "backend" field, or a /v1/infer request's "backend" field: the
//     bit-exact int8 reference (int8 weights, uint8 activations, int32
//     accumulators, frozen requantization) and the packed-weight
//     int8-fast pipeline (dual-lane uint64 weight panels packed at
//     compile time, fused fixed-point requantization, batched serving
//     lanes) that outruns the float32 plan under a statistical
//     per-exit-accuracy parity gate; plans are cached per deployment
//     alongside the experiment engine's deployment cache;
//
//   - the HTTP serving layer (internal/serve, cmd/ehserved): submit
//     declarative GridSpecs, poll progress, stream per-point results as
//     NDJSON, fetch deterministic final reports, upload/download
//     deployment artifacts, with graceful shutdown; every request runs
//     through one middleware chain — panic recovery, request-ID
//     injection, structured slog request logging, metrics, per-client
//     token-bucket rate limiting (X-Client-ID keyed, 429 + Retry-After
//     above the queue-cap backpressure) — built with functional options
//     (serve.New + WithSession/WithBatchConfig/WithRateLimit/
//     WithLogger/WithClock/WithPprof);
//
//   - operational observability (internal/obs): a zero-dependency
//     metrics registry (counters, gauges, histograms) served as
//     Prometheus text exposition on GET /metrics — per-route request
//     counts and latencies, per-model queue depth, batch-size and
//     latency histograms, exit-taken counters — with GET /v1/stats kept
//     as a deprecated JSON view over the same registry (monotonic
//     across artifact deletes), /healthz and /readyz health probes
//     (readiness flips during graceful drain), and net/http/pprof
//     behind the -pprof flag;
//
//   - an exported error taxonomy (ErrBadInput, ErrModelNotFound,
//     ErrQueueFull, ErrInferenceFailed): Session.Infer/InferBatch and
//     the HTTP layer wrap these sentinels so errors.Is works end to
//     end, and internal/serve maps them to HTTP status codes in one
//     table;
//
//   - online inference serving (internal/batch, POST /v1/infer):
//     requests against an uploaded artifact or registered deployment
//     are micro-batched per model — a bounded queue accumulates them up
//     to a batch-size/latency-window bound, sheds overload as 429, and
//     drains cleanly on shutdown — and execute on a batched plan
//     executor (plan.BatchExec) whose per-image float32 output is
//     bit-identical to the single-image plan; Session.Infer and
//     Session.InferBatch expose the same path in-process, returning the
//     predicted class, exit taken, and per-exit confidence profile, and
//     GET /v1/stats reports queue depth, the batch-size histogram,
//     latency percentiles, and throughput;
//
//   - versioned deployment artifacts (internal/artifact): a
//     self-describing bundle — magic, format version, JSON manifest,
//     binary tensor sections — that round-trips a Deployed end to end
//     (architecture spec, compressed weights, per-exit accuracies,
//     compression policy, pinned int8 calibration scales, default
//     backend) with SaveDeployed/LoadDeployed and Session.Deploy; a
//     loaded artifact produces byte-identical episode reports to the
//     in-process deployment it was saved from, on every backend, and
//     decoding is strict (unknown versions, truncated sections, shape
//     mismatches, and trailing bytes are errors);
//
//   - open axis registries: RegisterDevice / RegisterPolicy /
//     RegisterTrace / RegisterSchedule / RegisterDeployment publish
//     user components under names any GridSpec — including one POSTed
//     to ehserved — can reference; registries are RWMutex-guarded and
//     duplicate-rejecting, and /v1/registry reflects them live. The
//     fluent ScenarioBuilder (NewScenario) assembles custom scenarios
//     over the same named components.
//
//   - fleet simulation (internal/fleet): a declarative FleetSpec
//     describes populations of simulated intermittent devices (device
//     model, capacitor, trace family, exit policy, RL hyperparameters,
//     deterministic join/leave/degrade churn), and a sharded engine
//     runs 10⁴–10⁶ of them through the fused episode loop with packed
//     per-population state arenas — bit-identical at any worker count,
//     resumable from journaled epoch snapshots (a SIGKILLed daemon
//     reproduces an uninterrupted run's final document byte for byte),
//     exposed as Session.RunFleet/StartFleet and served by ehserved
//     under POST /v1/fleets with NDJSON snapshot streaming, a unified
//     GET /v1/jobs listing, and per-fleet metric families;
//
//   - mechanical invariant enforcement (internal/lint, cmd/ehlint):
//     five go/analysis-style analyzers — bitident (deterministic float
//     accumulation in the kernels), hotpathalloc (allocation-free
//     //ehlint:hotpath functions), ctxthread (context threading in the
//     blocking engines), errtaxonomy (serve's error-code table and %w
//     wrapping), obsmetric (Prometheus naming and label arity) — run by
//     make lint and CI through go vet -vettool; see README "Static
//     analysis".
//
// This package is the public façade, organized around the Session type:
// a Session owns the worker pool cap, the base seed RNG streams derive
// from, a keyed deployment cache (repeated grids reuse identical
// Deployed models), and the progress callback. Every long-running method
// takes a context.Context; cancellation is cooperative — checked between
// grid points and training episodes — returns ctx.Err(), and preserves
// completed work bit-for-bit. cmd/sweep, cmd/paperbench, cmd/ehsim, and
// cmd/ehserved all run on Sessions; the pre-Session free functions
// remain as thin deprecated wrappers so old callers migrate
// incrementally (see README for the migration table).
//
// The bench suite in bench_test.go regenerates every figure of the
// paper's evaluation; see EXPERIMENTS.md for paper-vs-measured values
// and DESIGN.md for the system inventory and the documented
// substitutions (synthetic dataset, synthetic solar trace, calibrated
// accuracy surrogate).
//
// # Quickstart
//
//	session := ehinfer.NewSession(ehinfer.WithSeed(1))
//	deployed, _ := session.BuildDeployed(ehinfer.Fig1bNonuniform())
//	rows, _ := session.CompareSystems(ctx, session.Scenario(), deployed,
//		ehinfer.CompareConfig{})
//	for _, r := range rows {
//		fmt.Printf("%s IEpmJ=%.2f\n", r.System, r.IEpmJ)
//	}
//
// # Grids, streaming, serving
//
//	grid := ehinfer.PaperSweepGrid([]float64{0.02, 0.032}, []float64{3, 6}, 3, 500)
//	run := session.StartGrid(ctx, grid)
//	for r := range run.Results() { // per-point results as workers finish
//		fmt.Printf("point %d done\n", r.Point.Index)
//	}
//	res, _ := run.Wait() // deterministic final GridResult
//
// The same grids travel over HTTP as declarative GridSpecs:
//
//	ehserved &
//	curl -s localhost:8080/v1/grids -d '{"seeds":[1,2,3]}'
//	curl -sN 'localhost:8080/v1/grids/g1/results?format=ndjson'
//
// # Artifacts: compress once, flash once
//
//	deployed, _ := session.BuildDeployed(ehinfer.Fig1bNonuniform())
//	_ = ehinfer.SaveDeployed("model.ehar", deployed,
//		ehinfer.WithArtifactName("flagship"))
//	restored, _ := session.Deploy("model.ehar") // bit-identical runs
//	_ = ehinfer.RegisterDeployment("flagship", restored)
//	// …and any grid spec may now name "flagship" as a policy axis value.
//
// # Online inference
//
//	pred, _ := session.Infer(ctx, restored, pixels) // deepest exit
//	fmt.Println(pred.Class, pred.Exit, pred.ExitConfidences)
//	preds, _ := session.InferBatch(ctx, restored, batch,
//		ehinfer.InferWithThreshold(0.8)) // anytime early exit
//
// Over HTTP the same path is POST /v1/infer on ehserved (micro-batched
// per model, 429 backpressure at the queue bound; see README "Online
// inference" for the batching knobs and curl quickstart).
package ehinfer
